// Package cluster scales adeptd out to a static fleet of peers: a
// consistent-hash ring routes each plan request to the peer owning its
// content address (lifting the plan cache's shard-by-digest-prefix scheme
// across processes), and versioned registry mutations fan out to every
// peer as HMAC-signed push-invalidation webhooks so named-platform
// resolutions converge. The design follows the distributed deployment
// services of the related work — Flissi & Merle's deployment framework
// and Dearle et al.'s autonomically managed middleware — in making the
// planner itself a replicated, self-routing service.
//
// Membership is static (the -peers flag): every peer is configured with
// the same sorted peer list and therefore computes the same ring, so
// routing needs no gossip, no coordinator, and no agreement protocol
// beyond configuration. Peer failure degrades, never breaks: a request
// whose owner is unreachable is planned locally (and counted as a
// fallback), and webhook deliveries retry with exponential backoff until
// the peer returns or the attempts are exhausted — version-checked
// application makes redelivery harmless.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultReplicas is the virtual-node count per peer on the ring. 64
// points per peer keeps the maximum ownership imbalance across a handful
// of peers within a few percent while the ring stays small enough to
// rebuild instantly.
const DefaultReplicas = 64

// Ring is a consistent-hash ring over the content-address digest space.
// Peers are placed at Replicas pseudo-random points each (SHA-256 of
// "url#i", so every peer computes identical placements from the same
// configuration), and a key belongs to the first peer point at or after
// the key's own point, wrapping at the top of the space.
type Ring struct {
	replicas int
	peers    []string // sorted, deduplicated
	points   []ringPoint
}

type ringPoint struct {
	hash uint64
	peer string
}

// NewRing builds the ring over the given peer URLs. Order and duplicates
// in peers are irrelevant: the list is sorted and deduplicated first, so
// every cluster member configured with the same set — in any order —
// computes the same ring.
func NewRing(peers []string, replicas int) (*Ring, error) {
	if len(peers) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one peer")
	}
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	uniq := make([]string, 0, len(peers))
	seen := make(map[string]bool, len(peers))
	for _, p := range peers {
		if p == "" {
			return nil, fmt.Errorf("cluster: empty peer URL")
		}
		if !seen[p] {
			seen[p] = true
			uniq = append(uniq, p)
		}
	}
	sort.Strings(uniq)
	r := &Ring{
		replicas: replicas,
		peers:    uniq,
		points:   make([]ringPoint, 0, len(uniq)*replicas),
	}
	for _, peer := range uniq {
		for i := 0; i < replicas; i++ {
			sum := sha256.Sum256([]byte(peer + "#" + strconv.Itoa(i)))
			r.points = append(r.points, ringPoint{
				hash: binary.BigEndian.Uint64(sum[:8]),
				peer: peer,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A full 64-bit collision between two peers' points is vanishingly
		// unlikely, but the tie-break must still be deterministic.
		return r.points[i].peer < r.points[j].peer
	})
	return r, nil
}

// keyPoint maps a content address onto the ring's hash space. Cache keys
// are hex SHA-256 digests, so their leading 16 hex digits are already a
// uniform 64-bit value — the same digest-prefix scheme the in-process
// cache shards by, widened from 4 bits to 64. Non-digest keys (tests,
// future key schemes) fall back to FNV-1a.
func keyPoint(key string) uint64 {
	if len(key) >= 16 {
		if v, err := strconv.ParseUint(key[:16], 16, 64); err == nil {
			return v
		}
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	return h.Sum64()
}

// Owner returns the peer owning key's slice of the ring.
func (r *Ring) Owner(key string) string {
	p := keyPoint(key)
	// First point with hash >= p, wrapping to points[0] past the top.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= p })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].peer
}

// Peers returns the ring membership, sorted.
func (r *Ring) Peers() []string {
	return append([]string(nil), r.peers...)
}

// Replicas returns the virtual-node count per peer.
func (r *Ring) Replicas() int { return r.replicas }

// Share returns the fraction of the hash space peer owns — the expected
// share of content addresses routed to it (about 1/len(peers), with
// bounded imbalance from the pseudo-random placement).
func (r *Ring) Share(peer string) float64 {
	if len(r.points) == 0 {
		return 0
	}
	// Each point owns the arc from its predecessor (exclusive) to itself
	// (inclusive); the first point also owns the wrap-around arc. Each
	// arc length is exact in uint64 (wrapping subtraction), but the sum
	// must accumulate in float64: a peer owning the whole circle owns
	// 2^64 points, which a uint64 total would wrap to zero.
	var owned float64
	for i, pt := range r.points {
		if pt.peer != peer {
			continue
		}
		var prev uint64
		if i == 0 {
			prev = r.points[len(r.points)-1].hash
		} else {
			prev = r.points[i-1].hash
		}
		owned += float64(pt.hash - prev)
	}
	const circle = float64(1<<63) * 2 // 2^64
	return owned / circle
}
