package cluster

import (
	"bytes"
	"context"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"sync"

	"adept/internal/service"
)

// SignatureHeader carries the hex HMAC-SHA256 of the webhook body, keyed
// by the cluster's shared secret.
const SignatureHeader = "X-Adept-Signature"

// maxWebhookBody bounds an invalidation payload: one platform document
// plus envelope. 16 MB is far above any legitimate platform.
const maxWebhookBody = 16 << 20

// sign computes the hex HMAC-SHA256 of body under secret.
func sign(secret string, body []byte) string {
	mac := hmac.New(sha256.New, []byte(secret))
	mac.Write(body)
	return hex.EncodeToString(mac.Sum(nil))
}

// verify reports whether sig is body's valid signature under secret,
// comparing in constant time.
func verify(secret string, body []byte, sig string) bool {
	want, err := hex.DecodeString(sign(secret, body))
	if err != nil {
		return false
	}
	got, err := hex.DecodeString(sig)
	if err != nil {
		return false
	}
	return hmac.Equal(want, got)
}

// Broadcast fans the registry update out to every other peer, each on
// its own delivery goroutine so a slow peer never blocks the writer or
// the other peers. Deliveries retry with exponential backoff; a peer
// that stays down simply misses the update until its next restart
// re-reads the journal or a newer version reaches it (version-checked
// application makes both redelivery and loss safe).
func (n *Node) Broadcast(u service.RegistryUpdate) {
	u.Origin = n.cfg.Self
	body, err := json.Marshal(u)
	if err != nil {
		// A platform that round-tripped through the registry always
		// marshals; this guards future payload changes.
		n.logger.LogAttrs(n.ctx, slog.LevelError, "encode registry update",
			slog.String("name", u.Name), slog.String("error", err.Error()))
		return
	}
	for _, peer := range n.ring.Peers() {
		if peer == n.cfg.Self {
			continue
		}
		n.wg.Add(1)
		go func(peer string) {
			defer n.wg.Done()
			n.deliver(peer, u.Name, u.Version, body)
		}(peer)
	}
}

// deliver pushes one signed invalidation to peer, retrying
// DeliveryAttempts times with exponential backoff (RetryBase, 2×, 4×,
// ...). Every failed attempt counts one peer error; only a delivered
// webhook counts as sent.
func (n *Node) deliver(peer, name string, version uint64, body []byte) {
	for attempt := 0; attempt < n.cfg.DeliveryAttempts; attempt++ {
		if attempt > 0 {
			if !n.sleep(n.ctx, n.cfg.RetryBase<<(attempt-1)) {
				return // node closing
			}
		}
		err := n.postInvalidate(peer, body)
		if err == nil {
			n.invSent.Add(1)
			n.noteSuccess(peer)
			return
		}
		n.peerErrors.Add(1)
		n.noteFailure(peer)
		if n.logger.Enabled(n.ctx, slog.LevelWarn) {
			n.logger.LogAttrs(n.ctx, slog.LevelWarn, "invalidation delivery failed",
				slog.String("peer", peer),
				slog.String("name", name),
				slog.Uint64("version", version),
				slog.Int("attempt", attempt+1),
				slog.Int("attempts", n.cfg.DeliveryAttempts),
				slog.String("error", err.Error()))
		}
	}
}

// postInvalidate performs one signed POST of body to peer's webhook
// receiver.
func (n *Node) postInvalidate(peer string, body []byte) error {
	ctx, cancel := context.WithTimeout(n.ctx, n.cfg.ForwardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+"/v1/cluster/invalidate", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if n.cfg.Secret != "" {
		req.Header.Set(SignatureHeader, sign(n.cfg.Secret, body))
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, maxWebhookBody))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("peer answered %d", resp.StatusCode)
	}
	return nil
}

// invalidateResult is the webhook receiver's JSON answer.
type invalidateResult struct {
	// Applied reports that the update was newer than local state and
	// changed it; false means it was stale, an echo of this node's own
	// write, or a no-op.
	Applied bool   `json:"applied"`
	Name    string `json:"name"`
	Version uint64 `json:"version"`
}

// InvalidateHandler serves POST /v1/cluster/invalidate: verify the HMAC
// signature, decode the update, drop own-origin echoes, and fold the
// rest into the registry iff strictly newer than local state.
func (n *Node) InvalidateHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, maxWebhookBody))
		if err != nil {
			http.Error(w, `{"error":"read body"}`, http.StatusBadRequest)
			return
		}
		if n.cfg.Secret != "" && !verify(n.cfg.Secret, body, r.Header.Get(SignatureHeader)) {
			http.Error(w, `{"error":"bad signature"}`, http.StatusForbidden)
			return
		}
		var u service.RegistryUpdate
		if err := json.Unmarshal(body, &u); err != nil {
			http.Error(w, `{"error":"bad update payload"}`, http.StatusBadRequest)
			return
		}
		res := invalidateResult{Name: u.Name, Version: u.Version}
		if u.Origin != n.cfg.Self {
			applied, err := n.cfg.Registry.ApplyRemote(u)
			if err != nil {
				http.Error(w, fmt.Sprintf(`{"error":%q}`, err.Error()), http.StatusBadRequest)
				return
			}
			if applied {
				n.invApplied.Add(1)
			}
			res.Applied = applied
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(res)
	})
}

// PeerStatus is one ring member's row in the cluster status report.
type PeerStatus struct {
	URL  string `json:"url"`
	Self bool   `json:"self,omitempty"`
	// Healthy reflects a live /healthz probe for remote peers (and is
	// always true for self).
	Healthy bool `json:"healthy"`
	// ConsecutiveFailures is the passive circuit-breaker state: failed
	// exchanges since the last success (0 = breaker closed).
	ConsecutiveFailures int `json:"consecutive_failures,omitempty"`
	// OwnedCachedKeys counts this node's locally cached content
	// addresses that the ring assigns to this peer.
	OwnedCachedKeys int `json:"owned_cached_keys"`
	// RingShare is the fraction of the hash space the peer owns.
	RingShare float64 `json:"ring_share"`
}

// Status is the JSON body of GET /v1/cluster.
type Status struct {
	Self       string             `json:"self"`
	Replicas   int                `json:"replicas"`
	CachedKeys int                `json:"cached_keys"`
	Counters   service.PeerReport `json:"counters"`
	Peers      []PeerStatus       `json:"peers"`
}

// StatusHandler serves GET /v1/cluster: ring membership with per-peer
// live health probes, circuit-breaker state, ring shares, and how many
// locally cached keys each peer owns.
func (n *Node) StatusHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		peers := n.ring.Peers()
		owned := make(map[string]int, len(peers))
		keys := n.cfg.Cache.Keys()
		for _, k := range keys {
			owned[n.ring.Owner(string(k))]++
		}
		st := Status{
			Self:       n.cfg.Self,
			Replicas:   n.ring.Replicas(),
			CachedKeys: len(keys),
			Counters:   n.Report(),
			Peers:      make([]PeerStatus, len(peers)),
		}
		var wg sync.WaitGroup
		for i, peer := range peers {
			st.Peers[i] = PeerStatus{
				URL:                 peer,
				Self:                peer == n.cfg.Self,
				ConsecutiveFailures: n.peerFailures(peer),
				OwnedCachedKeys:     owned[peer],
				RingShare:           n.ring.Share(peer),
			}
			if peer == n.cfg.Self {
				st.Peers[i].Healthy = true
				continue
			}
			wg.Add(1)
			go func(i int, peer string) {
				defer wg.Done()
				st.Peers[i].Healthy = n.probe(r.Context(), peer)
			}(i, peer)
		}
		wg.Wait()
		sort.Slice(st.Peers, func(a, b int) bool { return st.Peers[a].URL < st.Peers[b].URL })
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(st)
	})
}

// probe issues one GET /healthz against peer.
func (n *Node) probe(ctx context.Context, peer string) bool {
	ctx, cancel := context.WithTimeout(ctx, probeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	return resp.StatusCode == http.StatusOK
}
