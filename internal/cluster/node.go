package cluster

import (
	"bytes"
	"container/list"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"adept/internal/obs"
	"adept/internal/service"
)

// Config wires a Node into one adeptd process.
type Config struct {
	// Self is this peer's advertised base URL. It must appear in Peers —
	// every member is configured with the one complete membership list.
	Self string
	// Peers is the full static cluster membership (Self included), as
	// base URLs. Order is irrelevant; every member sorts the same list
	// into the same ring.
	Peers []string
	// Secret is the shared HMAC key signing invalidation webhooks. Empty
	// disables signing and verification (trusted-network mode).
	Secret string
	// Replicas is the virtual-node count per peer on the ring
	// (DefaultReplicas when zero).
	Replicas int
	// ForwardTimeout bounds one forwarded plan exchange and one webhook
	// delivery attempt (default 2s). Kept tight on purpose: blowing the
	// timeout only costs a local replan, while a generous timeout stalls
	// every request routed at a dead peer.
	ForwardTimeout time.Duration
	// DeliveryAttempts is how many times one invalidation webhook is
	// tried per peer before being dropped (default 3; version-checked
	// application makes redelivery and loss both safe).
	DeliveryAttempts int
	// RetryBase seeds the exponential backoff between delivery attempts
	// (default 100ms: 100ms, 200ms, 400ms, ...).
	RetryBase time.Duration
	// RemoteFillCapacity bounds the LRU of forwarded responses retained
	// locally (default 256 entries; 0 keeps the default, negative
	// disables fill-back).
	RemoteFillCapacity int
	// Registry receives peer invalidations; Cache is consulted for key
	// ownership reporting. Both are the server's own stores.
	Registry service.RegistryStore
	Cache    service.CacheStore
	// Client issues all peer HTTP exchanges (http.DefaultClient-alike
	// when nil; tests inject RoundTrippers here).
	Client *http.Client
	// Logger receives peer-layer logs (discard when nil).
	Logger *slog.Logger
}

// defaults for the zero Config values.
const (
	defaultForwardTimeout   = 2 * time.Second
	defaultDeliveryAttempts = 3
	defaultRetryBase        = 100 * time.Millisecond
	defaultRemoteFill       = 256
	// probeTimeout bounds one /healthz probe issued by the status
	// endpoint.
	probeTimeout = time.Second
	// maxPeerBody bounds how much of a peer response body is read: a
	// plan response for a large platform is a few MB of XML; 64 MB is
	// far above any legitimate exchange.
	maxPeerBody = 64 << 20
	// breakerBase/breakerMax shape the per-peer circuit breaker: after n
	// consecutive failures the peer is skipped for min(base<<(n-1), max).
	breakerBase = 250 * time.Millisecond
	breakerMax  = 15 * time.Second
)

// Node is the peer layer of one adeptd process: it owns the ring, the
// peer HTTP client, the per-peer circuit breakers, the retained-response
// LRU, and the webhook delivery workers. It implements service.Cluster.
type Node struct {
	cfg    Config
	ring   *Ring
	client *http.Client
	logger *slog.Logger

	forwards   atomic.Uint64
	fallbacks  atomic.Uint64
	remoteHits atomic.Uint64
	invSent    atomic.Uint64
	invApplied atomic.Uint64
	peerErrors atomic.Uint64

	healthMu sync.Mutex
	health   map[string]*peerHealth

	remote *remoteFill

	// now and sleep are injection points for tests; production uses the
	// wall clock. Both are function values, never called at plan-shaping
	// time — the breaker and backoff are serving-layer concerns.
	now   func() time.Time
	sleep func(ctx context.Context, d time.Duration) bool

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// peerHealth is one peer's passive circuit breaker: consecutive failures
// open it for an exponentially growing window; one success closes it.
type peerHealth struct {
	failures  int
	openUntil time.Time
}

// New validates cfg, builds the ring, and returns a ready Node. The
// returned Node owns background webhook deliveries; Close releases them.
func New(cfg Config) (*Node, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: Self URL required")
	}
	if cfg.Registry == nil || cfg.Cache == nil {
		return nil, fmt.Errorf("cluster: Registry and Cache stores required")
	}
	ring, err := NewRing(cfg.Peers, cfg.Replicas)
	if err != nil {
		return nil, err
	}
	self := false
	for _, p := range ring.Peers() {
		if p == cfg.Self {
			self = true
			break
		}
	}
	if !self {
		return nil, fmt.Errorf("cluster: Self %q is not in the peer list %v", cfg.Self, ring.Peers())
	}
	if cfg.ForwardTimeout <= 0 {
		cfg.ForwardTimeout = defaultForwardTimeout
	}
	if cfg.DeliveryAttempts <= 0 {
		cfg.DeliveryAttempts = defaultDeliveryAttempts
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = defaultRetryBase
	}
	if cfg.RemoteFillCapacity == 0 {
		cfg.RemoteFillCapacity = defaultRemoteFill
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	if cfg.Logger == nil {
		cfg.Logger = obs.NopLogger()
	}
	//adeptvet:allow ctxflow daemon-lifetime lifecycle root for webhook deliveries; there is no caller context to inherit
	ctx, cancel := context.WithCancel(context.Background())
	n := &Node{
		cfg:    cfg,
		ring:   ring,
		client: cfg.Client,
		logger: cfg.Logger,
		health: make(map[string]*peerHealth, len(ring.Peers())),
		now:    time.Now,
		sleep:  sleepCtx,
		ctx:    ctx,
		cancel: cancel,
	}
	if cfg.RemoteFillCapacity > 0 {
		n.remote = newRemoteFill(cfg.RemoteFillCapacity)
	}
	return n, nil
}

// Close stops background webhook deliveries and waits for them to drain.
func (n *Node) Close() {
	n.cancel()
	n.wg.Wait()
}

// Ring exposes the node's consistent-hash ring (for status and tests).
func (n *Node) Ring() *Ring { return n.ring }

// Report snapshots the peer counters for the metrics endpoints.
func (n *Node) Report() service.PeerReport {
	return service.PeerReport{
		Peers:                len(n.ring.Peers()),
		Forwards:             n.forwards.Load(),
		Fallbacks:            n.fallbacks.Load(),
		RemoteCacheHits:      n.remoteHits.Load(),
		InvalidationsSent:    n.invSent.Load(),
		InvalidationsApplied: n.invApplied.Load(),
		PeerErrors:           n.peerErrors.Load(),
	}
}

// sleepCtx sleeps for d unless ctx ends first; it reports whether the
// full duration elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// peerOpen reports whether peer's circuit breaker currently blocks
// exchanges with it.
func (n *Node) peerOpen(peer string) bool {
	n.healthMu.Lock()
	defer n.healthMu.Unlock()
	h, ok := n.health[peer]
	if !ok {
		return false
	}
	return h.failures > 0 && n.now().Before(h.openUntil)
}

// noteFailure records one failed exchange with peer and extends its
// breaker window exponentially (250ms, 500ms, ..., capped at 15s).
func (n *Node) noteFailure(peer string) {
	n.healthMu.Lock()
	defer n.healthMu.Unlock()
	h, ok := n.health[peer]
	if !ok {
		h = &peerHealth{}
		n.health[peer] = h
	}
	h.failures++
	backoff := breakerBase
	for i := 1; i < h.failures && backoff < breakerMax; i++ {
		backoff *= 2
	}
	if backoff > breakerMax {
		backoff = breakerMax
	}
	h.openUntil = n.now().Add(backoff)
}

// noteSuccess closes peer's breaker.
func (n *Node) noteSuccess(peer string) {
	n.healthMu.Lock()
	defer n.healthMu.Unlock()
	delete(n.health, peer)
}

// peerFailures reports peer's consecutive failure count (0 = healthy).
func (n *Node) peerFailures(peer string) int {
	n.healthMu.Lock()
	defer n.healthMu.Unlock()
	h, ok := n.health[peer]
	if !ok {
		return 0
	}
	return h.failures
}

// ForwardPlan answers the plan request on the peer owning key, or
// reports ok=false to have the caller plan locally. Self-owned keys
// return immediately; remote-owned keys are answered from the retained
// forwarded-response LRU when possible, else forwarded one hop with the
// loop-prevention header set. Any peer failure — breaker open, transport
// error, non-200 — degrades to local planning and is counted, never
// surfaced to the client.
func (n *Node) ForwardPlan(ctx context.Context, key service.CacheKey, pr *service.PlanRequest) (*service.PlanResponse, bool) {
	owner := n.ring.Owner(string(key))
	if owner == n.cfg.Self {
		return nil, false
	}
	cacheable := !pr.NoCache && !pr.Trace
	if cacheable && n.remote != nil {
		if resp, ok := n.remote.get(key); ok {
			n.remoteHits.Add(1)
			return resp, true
		}
	}
	if n.peerOpen(owner) {
		n.fallbacks.Add(1)
		return nil, false
	}
	resp, err := n.forwardOnce(ctx, owner, pr)
	if err != nil {
		n.peerErrors.Add(1)
		n.noteFailure(owner)
		n.fallbacks.Add(1)
		if n.logger.Enabled(ctx, slog.LevelWarn) {
			n.logger.LogAttrs(ctx, slog.LevelWarn, "peer forward failed; planning locally",
				slog.String("peer", owner),
				slog.String("key", string(key)),
				slog.String("error", err.Error()))
		}
		return nil, false
	}
	n.noteSuccess(owner)
	n.forwards.Add(1)
	resp.Peer = owner
	if cacheable && n.remote != nil {
		// Retain a copy normalized to what a cache-served answer looks
		// like: content addresses are immutable, so the copy never goes
		// stale, and the flags must not claim a fresh planning run.
		fill := *resp
		fill.Cached = true
		fill.Coalesced = false
		fill.Variants = nil
		fill.Trace = nil
		n.remote.put(key, &fill)
	}
	return resp, true
}

// forwardOnce performs one forwarded /v1/plan exchange with peer.
func (n *Node) forwardOnce(ctx context.Context, peer string, pr *service.PlanRequest) (*service.PlanResponse, error) {
	body, err := json.Marshal(pr)
	if err != nil {
		return nil, fmt.Errorf("encode request: %w", err)
	}
	ctx, cancel := context.WithTimeout(ctx, n.cfg.ForwardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+"/v1/plan", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(service.ForwardedHeader, n.cfg.Self)
	httpResp, err := n.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer httpResp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(httpResp.Body, maxPeerBody))
	if err != nil {
		return nil, fmt.Errorf("read response: %w", err)
	}
	if httpResp.StatusCode != http.StatusOK {
		// A non-200 from the owner (replication lag on a platform name,
		// admission shedding, an owner-side bug) falls back to a local
		// run, which produces the authoritative local answer or error.
		return nil, fmt.Errorf("peer answered %d", httpResp.StatusCode)
	}
	var resp service.PlanResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		return nil, fmt.Errorf("decode response: %w", err)
	}
	return &resp, nil
}

// remoteFill is a bounded LRU of forwarded plan responses, keyed by
// content address. Entries are immutable; get returns a private shallow
// copy so callers can stamp per-request fields (Peer is already set).
type remoteFill struct {
	mu       sync.Mutex
	capacity int
	entries  map[service.CacheKey]*list.Element
	order    *list.List // front = most recently used
}

type remoteEntry struct {
	key  service.CacheKey
	resp *service.PlanResponse
}

func newRemoteFill(capacity int) *remoteFill {
	return &remoteFill{
		capacity: capacity,
		entries:  make(map[service.CacheKey]*list.Element, capacity),
		order:    list.New(),
	}
}

func (f *remoteFill) get(key service.CacheKey) (*service.PlanResponse, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	el, ok := f.entries[key]
	if !ok {
		return nil, false
	}
	f.order.MoveToFront(el)
	resp := *el.Value.(*remoteEntry).resp
	return &resp, true
}

func (f *remoteFill) put(key service.CacheKey, resp *service.PlanResponse) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if el, ok := f.entries[key]; ok {
		el.Value.(*remoteEntry).resp = resp
		f.order.MoveToFront(el)
		return
	}
	if f.order.Len() >= f.capacity {
		oldest := f.order.Back()
		if oldest != nil {
			f.order.Remove(oldest)
			delete(f.entries, oldest.Value.(*remoteEntry).key)
		}
	}
	f.entries[key] = f.order.PushFront(&remoteEntry{key: key, resp: resp})
}

func (f *remoteFill) len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.order.Len()
}
