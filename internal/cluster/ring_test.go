package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"testing"
)

// testKeys generates n distinct hex-digest keys, shaped exactly like the
// plan cache's content addresses.
func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		sum := sha256.Sum256([]byte(fmt.Sprintf("key-%d", i)))
		keys[i] = hex.EncodeToString(sum[:])
	}
	return keys
}

// TestRingDeterminism proves the routing property clustering rests on:
// every member, handed the same membership set in any order, routes every
// key to the same owner.
func TestRingDeterminism(t *testing.T) {
	peers := []string{"http://a:1", "http://b:2", "http://c:3"}
	shuffled := []string{"http://c:3", "http://a:1", "http://b:2", "http://a:1"} // order + dup
	r1, err := NewRing(peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRing(shuffled, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range testKeys(500) {
		if o1, o2 := r1.Owner(k), r2.Owner(k); o1 != o2 {
			t.Fatalf("ring views diverge for %s: %q vs %q", k[:12], o1, o2)
		}
	}
	// Non-digest keys still route deterministically (FNV fallback).
	for _, k := range []string{"", "short", "not-hex-not-hex-not-hex"} {
		if o1, o2 := r1.Owner(k), r2.Owner(k); o1 != o2 {
			t.Fatalf("fallback routing diverges for %q: %q vs %q", k, o1, o2)
		}
	}
}

// TestRingBalance checks the virtual-node placement spreads ownership
// usefully: with the default replica count no peer should starve or
// dominate, and the analytic Share should agree with empirical routing.
func TestRingBalance(t *testing.T) {
	peers := []string{"http://a:1", "http://b:2", "http://c:3"}
	r, err := NewRing(peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	counts := make(map[string]int, len(peers))
	for _, k := range testKeys(n) {
		counts[r.Owner(k)]++
	}
	var shareSum float64
	for _, p := range peers {
		frac := float64(counts[p]) / n
		if frac < 0.10 || frac > 0.60 {
			t.Errorf("peer %s owns %.1f%% of keys; expected roughly a third", p, 100*frac)
		}
		share := r.Share(p)
		if math.Abs(share-frac) > 0.05 {
			t.Errorf("peer %s: analytic share %.3f vs empirical %.3f", p, share, frac)
		}
		shareSum += share
	}
	if math.Abs(shareSum-1) > 1e-9 {
		t.Errorf("shares sum to %.12f, want 1", shareSum)
	}
}

// TestRingSinglePeerOwnsAll pins the degenerate cluster of one.
func TestRingSinglePeerOwnsAll(t *testing.T) {
	r, err := NewRing([]string{"http://only:1"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range testKeys(50) {
		if r.Owner(k) != "http://only:1" {
			t.Fatal("single peer does not own every key")
		}
	}
	if s := r.Share("http://only:1"); math.Abs(s-1) > 1e-9 {
		t.Errorf("single-peer share = %v, want 1", s)
	}
}

// TestRingRejectsBadMembership covers constructor validation.
func TestRingRejectsBadMembership(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty membership accepted")
	}
	if _, err := NewRing([]string{"http://a", ""}, 0); err == nil {
		t.Error("empty peer URL accepted")
	}
}
