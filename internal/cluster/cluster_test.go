package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"adept/internal/platform"
	"adept/internal/service"
)

// waitFor polls cond until true or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func testPlatform(n int) *platform.Platform {
	p, err := platform.Generate(platform.GenSpec{
		Name: "cluster-test", N: n, Bandwidth: 100, MinPower: 100, MaxPower: 800, Seed: 42,
	})
	if err != nil {
		panic(err)
	}
	return p
}

// testPeer is one in-process cluster member: a real service.Server behind
// a real listener, with its Node wired in.
type testPeer struct {
	srv  *service.Server
	node *Node
	ts   *httptest.Server
}

// newTestCluster boots size daemons on loopback listeners and joins them
// into one ring. Listeners come up first (their URLs are the membership
// list), then every node is built over the full list — the same two-step
// dance cmd/adeptd does with -peers.
func newTestCluster(t *testing.T, size int) []*testPeer {
	t.Helper()
	peers := make([]*testPeer, size)
	urls := make([]string, size)
	for i := range peers {
		srv, err := service.New(service.Config{CacheSize: 64, Workers: 2, QueueDepth: 16})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(func() {
			ts.Close()
			srv.Close()
		})
		peers[i] = &testPeer{srv: srv, ts: ts}
		urls[i] = ts.URL
	}
	for i, p := range peers {
		node, err := New(Config{
			Self:      urls[i],
			Peers:     urls,
			Secret:    "test-secret",
			Registry:  p.srv.Registry(),
			Cache:     p.srv.Cache(),
			RetryBase: 5 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		p.srv.EnableCluster(node)
		p.node = node
		t.Cleanup(node.Close)
	}
	return peers
}

func postPlan(t *testing.T, url string, pr service.PlanRequest) (int, service.PlanResponse) {
	t.Helper()
	data, err := json.Marshal(pr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/plan", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out service.PlanResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, out
}

// TestClusterForwarding proves the tentpole routing behaviour on real
// listeners: non-owners forward to the digest's ring owner, surface the
// owner's cache state, and stamp the answering peer; owners plan locally
// with no peer stamp; retained responses serve repeats without re-contacting
// the owner.
func TestClusterForwarding(t *testing.T) {
	peers := newTestCluster(t, 3)
	req := service.PlanRequest{Platform: testPlatform(12), DgemmN: 310}

	// Discover the owner via any node's ring (all rings are identical).
	_, first := postPlan(t, peers[0].ts.URL, req)
	ownerURL := peers[0].node.Ring().Owner(first.Key)
	var owner, nonOwnerA, nonOwnerB *testPeer
	for _, p := range peers {
		switch {
		case p.ts.URL == ownerURL:
			owner = p
		case nonOwnerA == nil:
			nonOwnerA = p
		default:
			nonOwnerB = p
		}
	}

	// The owner answers its own keys with no forwarding involved.
	code, resp := postPlan(t, owner.ts.URL, req)
	if code != http.StatusOK {
		t.Fatalf("owner plan: status %d", code)
	}
	if resp.Peer != "" {
		t.Errorf("owner response stamped with peer %q", resp.Peer)
	}
	if resp.Key != first.Key {
		t.Fatalf("key diverged: %s vs %s", resp.Key, first.Key)
	}

	// Both non-owners answer the warm key from the owner's cache.
	for _, p := range []*testPeer{nonOwnerA, nonOwnerB} {
		if p == nil {
			t.Fatal("owner not found in membership")
		}
		code, resp := postPlan(t, p.ts.URL, req)
		if code != http.StatusOK {
			t.Fatalf("non-owner plan via %s: status %d", p.ts.URL, code)
		}
		if resp.Peer != ownerURL {
			t.Errorf("non-owner response peer = %q, want %q", resp.Peer, ownerURL)
		}
		if !resp.Cached {
			t.Errorf("warm-key forward via %s not served from the owner's cache", p.ts.URL)
		}
	}

	var forwards uint64
	for _, p := range peers {
		forwards += p.node.Report().Forwards
	}
	if forwards < 2 {
		t.Errorf("summed forwards = %d, want >= 2", forwards)
	}

	// A repeat on a non-owner is served from its retained copy, without
	// another peer exchange.
	before := nonOwnerA.node.Report()
	code, resp = postPlan(t, nonOwnerA.ts.URL, req)
	after := nonOwnerA.node.Report()
	if code != http.StatusOK || !resp.Cached || resp.Peer != ownerURL {
		t.Fatalf("remote-fill repeat: code %d cached %v peer %q", code, resp.Cached, resp.Peer)
	}
	if after.RemoteCacheHits != before.RemoteCacheHits+1 {
		t.Errorf("remote cache hits %d -> %d, want +1", before.RemoteCacheHits, after.RemoteCacheHits)
	}
	if after.Forwards != before.Forwards {
		t.Errorf("repeat re-forwarded (forwards %d -> %d)", before.Forwards, after.Forwards)
	}
}

// TestForwardLoopPrevention proves a request already forwarded once is
// planned where it lands, whatever the ring says — single-hop routing by
// construction.
func TestForwardLoopPrevention(t *testing.T) {
	peers := newTestCluster(t, 3)
	data, err := json.Marshal(service.PlanRequest{Platform: testPlatform(9), DgemmN: 310})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, peers[0].ts.URL+"/v1/plan", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(service.ForwardedHeader, "http://some-peer")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out service.PlanResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if out.Peer != "" {
		t.Errorf("forwarded request was re-forwarded to %q", out.Peer)
	}
	if got := peers[0].node.Report().Forwards; got != 0 {
		t.Errorf("forwards = %d, want 0 (marked request must plan locally)", got)
	}
}

// TestClusterRegistryConvergence drives a registry write through one peer
// and watches the invalidation webhooks converge every member, then a
// delete tombstone un-converge them again.
func TestClusterRegistryConvergence(t *testing.T) {
	peers := newTestCluster(t, 3)
	platJSON, err := json.Marshal(testPlatform(6))
	if err != nil {
		t.Fatal(err)
	}

	put, err := http.NewRequest(http.MethodPut, peers[0].ts.URL+"/v1/platforms/shared", bytes.NewReader(platJSON))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(put)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("put: status %d", resp.StatusCode)
	}

	waitFor(t, "registration to replicate", func() bool {
		for _, p := range peers {
			if _, ok := p.srv.Registry().Get("shared"); !ok {
				return false
			}
		}
		return true
	})

	// A name-referencing plan works on a peer the write never touched.
	code, _ := postPlan(t, peers[2].ts.URL, service.PlanRequest{PlatformName: "shared", DgemmN: 310})
	if code != http.StatusOK {
		t.Fatalf("plan by replicated name: status %d", code)
	}

	del, err := http.NewRequest(http.MethodDelete, peers[1].ts.URL+"/v1/platforms/shared", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(del)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}

	waitFor(t, "tombstone to replicate", func() bool {
		for _, p := range peers {
			if _, ok := p.srv.Registry().Get("shared"); ok {
				return false
			}
		}
		return true
	})

	var applied uint64
	for _, p := range peers {
		applied += p.node.Report().InvalidationsApplied
	}
	if applied < 4 { // 2 peers × (put + delete)
		t.Errorf("summed invalidations applied = %d, want >= 4", applied)
	}
}

// TestPeerFailureFallback kills the peer owning a key mid-run and proves
// the survivors degrade to local planning: every request still answers
// 200, the fallback counter moves, and no client ever sees a 5xx.
func TestPeerFailureFallback(t *testing.T) {
	peers := newTestCluster(t, 3)
	plat := testPlatform(8)

	// Find a request whose content address a *remote* peer owns, from
	// peers[0]'s point of view, by scanning service costs.
	var (
		victim *testPeer
		probe  service.PlanRequest
	)
	for w := 1.0; w <= 64; w++ {
		req := service.PlanRequest{Platform: plat, Wapp: w, Trace: true}
		code, resp := postPlan(t, peers[0].ts.URL, req)
		if code != http.StatusOK {
			t.Fatalf("probe plan: status %d", code)
		}
		if resp.Peer != "" {
			probe = req
			for _, p := range peers[1:] {
				if p.ts.URL == resp.Peer {
					victim = p
				}
			}
			break
		}
	}
	if victim == nil {
		t.Fatal("no probe key landed on a remote owner (ring distribution broken?)")
	}

	// Kill the owner. Its listener refuses connections from here on.
	victim.ts.Close()

	before := peers[0].node.Report()
	code, resp := postPlan(t, peers[0].ts.URL, probe)
	if code != http.StatusOK {
		t.Fatalf("plan after owner death: status %d, want 200", code)
	}
	if resp.Peer != "" {
		t.Errorf("dead owner still credited: peer = %q", resp.Peer)
	}
	after := peers[0].node.Report()
	if after.Fallbacks <= before.Fallbacks {
		t.Errorf("fallbacks %d -> %d, want an increase", before.Fallbacks, after.Fallbacks)
	}

	// A burst of fresh keys across the survivors: all 200, zero 5xx.
	survivors := []*testPeer{peers[0]}
	for _, p := range peers[1:] {
		if p != victim {
			survivors = append(survivors, p)
		}
	}
	for i := 0; i < 24; i++ {
		req := service.PlanRequest{Platform: plat, Wapp: 1000 + float64(i)}
		code, _ := postPlan(t, survivors[i%len(survivors)].ts.URL, req)
		if code != http.StatusOK {
			t.Fatalf("request %d after peer death: status %d, want 200", i, code)
		}
	}
}

// TestClusterStatusEndpoint exercises GET /v1/cluster end to end: ring
// membership, self marking, health probing of a dead peer, and ownership
// accounting.
func TestClusterStatusEndpoint(t *testing.T) {
	peers := newTestCluster(t, 3)
	// Warm a key so ownership counts have something to count. NoCache
	// sidesteps forwarding, so the entry lands in peers[0]'s own cache
	// whatever the ring says.
	postPlan(t, peers[0].ts.URL, service.PlanRequest{Platform: testPlatform(5), DgemmN: 310, NoCache: true})
	peers[2].ts.Close()

	resp, err := http.Get(peers[0].ts.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Self != peers[0].ts.URL {
		t.Errorf("self = %q, want %q", st.Self, peers[0].ts.URL)
	}
	if len(st.Peers) != 3 {
		t.Fatalf("peer rows = %d, want 3", len(st.Peers))
	}
	var owned int
	for _, row := range st.Peers {
		owned += row.OwnedCachedKeys
		switch row.URL {
		case peers[0].ts.URL:
			if !row.Self || !row.Healthy {
				t.Errorf("self row = %+v, want self and healthy", row)
			}
		case peers[2].ts.URL:
			if row.Healthy {
				t.Errorf("dead peer %s reported healthy", row.URL)
			}
		}
		if row.RingShare <= 0 || row.RingShare >= 1 {
			t.Errorf("peer %s ring share = %v, want in (0,1)", row.URL, row.RingShare)
		}
	}
	if owned != st.CachedKeys {
		t.Errorf("ownership rows sum to %d, cache holds %d", owned, st.CachedKeys)
	}
	if st.CachedKeys < 1 {
		t.Error("no cached keys reported after a warm plan")
	}
}

// fakeTransport scripts peer HTTP behaviour for webhook delivery tests:
// the first failuresLeft exchanges fail at the transport, later ones are
// served in-process by handler.
type fakeTransport struct {
	mu           sync.Mutex
	failuresLeft int
	attempts     int
	sigs         []string
	handler      http.Handler
}

func (f *fakeTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.attempts++
	f.sigs = append(f.sigs, req.Header.Get(SignatureHeader))
	if f.failuresLeft > 0 {
		f.failuresLeft--
		return nil, fmt.Errorf("synthetic connection failure")
	}
	rec := httptest.NewRecorder()
	f.handler.ServeHTTP(rec, req)
	return rec.Result(), nil
}

// newUnitNode builds a Node with injected stores, transport, and sleep —
// no listeners involved.
func newUnitNode(t *testing.T, self string, peers []string, secret string, rt http.RoundTripper, sleeps *[]time.Duration) *Node {
	t.Helper()
	cache, err := service.NewPlanCache(8)
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(Config{
		Self:      self,
		Peers:     peers,
		Secret:    secret,
		Registry:  service.NewRegistry(),
		Cache:     cache,
		RetryBase: 10 * time.Millisecond,
		Client:    &http.Client{Transport: rt},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	if sleeps != nil {
		var mu sync.Mutex
		n.sleep = func(_ context.Context, d time.Duration) bool {
			mu.Lock()
			defer mu.Unlock()
			*sleeps = append(*sleeps, d)
			return true
		}
	}
	return n
}

// TestWebhookRetryBackoff drops the first two deliveries on the floor and
// proves the sender retries with exponential backoff, signs every
// attempt, and converges the receiver exactly once.
func TestWebhookRetryBackoff(t *testing.T) {
	const secret = "shared-hmac-key"
	peerA, peerB := "http://a.local", "http://b.local"

	receiver := newUnitNode(t, peerB, []string{peerA, peerB}, secret, nil, nil)
	var sleeps []time.Duration
	ft := &fakeTransport{failuresLeft: 2, handler: receiver.InvalidateHandler()}
	sender := newUnitNode(t, peerA, []string{peerA, peerB}, secret, ft, &sleeps)

	sender.Broadcast(service.RegistryUpdate{Name: "p", Version: 7, Platform: testPlatform(4)})
	sender.wg.Wait()

	ft.mu.Lock()
	attempts, sigs := ft.attempts, append([]string(nil), ft.sigs...)
	ft.mu.Unlock()
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (two failures + success)", attempts)
	}
	for i, sig := range sigs {
		if sig == "" {
			t.Errorf("attempt %d was unsigned", i+1)
		}
	}
	if len(sleeps) != 2 || sleeps[0] != 10*time.Millisecond || sleeps[1] != 20*time.Millisecond {
		t.Errorf("backoff sleeps = %v, want [10ms 20ms]", sleeps)
	}

	rep := sender.Report()
	if rep.InvalidationsSent != 1 || rep.PeerErrors != 2 {
		t.Errorf("sender report = %+v, want 1 sent / 2 peer errors", rep)
	}
	if _, v, ok := receiver.cfg.Registry.GetVersion("p"); !ok || v != 7 {
		t.Errorf("receiver state = version %d (ok=%v), want 7", v, ok)
	}
	if got := receiver.Report().InvalidationsApplied; got != 1 {
		t.Errorf("receiver applied = %d, want 1", got)
	}
}

// TestInvalidateHandlerAuth pins the webhook receiver's trust boundary:
// unsigned and mis-signed payloads are rejected, own-origin echoes and
// stale versions are acknowledged but not applied.
func TestInvalidateHandlerAuth(t *testing.T) {
	const secret = "shared-hmac-key"
	peerA, peerB := "http://a.local", "http://b.local"
	node := newUnitNode(t, peerB, []string{peerA, peerB}, secret, nil, nil)
	h := node.InvalidateHandler()

	body, err := json.Marshal(service.RegistryUpdate{
		Name: "p", Version: 3, Platform: testPlatform(4), Origin: peerA,
	})
	if err != nil {
		t.Fatal(err)
	}
	post := func(payload []byte, sig string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, "/v1/cluster/invalidate", bytes.NewReader(payload))
		if sig != "" {
			req.Header.Set(SignatureHeader, sig)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec
	}

	if rec := post(body, ""); rec.Code != http.StatusForbidden {
		t.Errorf("unsigned webhook: status %d, want 403", rec.Code)
	}
	if rec := post(body, sign("wrong-key", body)); rec.Code != http.StatusForbidden {
		t.Errorf("mis-signed webhook: status %d, want 403", rec.Code)
	}
	if _, ok := node.cfg.Registry.Get("p"); ok {
		t.Fatal("rejected webhook mutated the registry")
	}

	rec := post(body, sign(secret, body))
	if rec.Code != http.StatusOK {
		t.Fatalf("signed webhook: status %d: %s", rec.Code, rec.Body)
	}
	var res invalidateResult
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil || !res.Applied {
		t.Fatalf("signed webhook result = %+v (err %v), want applied", res, err)
	}

	// Redelivery (webhook retry after a lost ACK) is acknowledged, not
	// re-applied.
	rec = post(body, sign(secret, body))
	if rec.Code != http.StatusOK {
		t.Fatalf("redelivery: status %d", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil || res.Applied {
		t.Fatalf("redelivery result = %+v (err %v), want not applied", res, err)
	}

	// An echo of this node's own write is dropped even when newer.
	echo, err := json.Marshal(service.RegistryUpdate{
		Name: "p", Version: 9, Platform: testPlatform(4), Origin: peerB,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec = post(echo, sign(secret, echo))
	if rec.Code != http.StatusOK {
		t.Fatalf("echo: status %d", rec.Code)
	}
	if _, v, _ := node.cfg.Registry.GetVersion("p"); v != 3 {
		t.Errorf("own-origin echo applied (version %d, want 3)", v)
	}
}
