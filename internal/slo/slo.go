// Package slo turns the time-series layer of internal/obs into
// operational answers: declarative service-level objectives with error
// budgets, multi-window burn-rate evaluation in the style of the SRE
// workbook, and an alert rule state machine (pending → firing →
// resolved) whose transitions land in the MAPE-K event journal.
//
// Every objective reduces to a (good, total) pair of cumulative
// counters: availability binds requests-minus-errors over requests,
// and a latency objective binds "requests at or under the threshold"
// over all requests using the histogram's cumulative buckets. The
// engine samples both into obs.Series rings and evaluates burn rates
// as windowed counter deltas, so its numbers are — by construction —
// the same numbers an external Prometheus would compute from the
// /metrics exposition with the PromQL equivalents in the README.
package slo

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"adept/internal/obs"
)

// ObjectiveType selects how an objective's (good, total) pair is bound.
const (
	TypeAvailability = "availability"
	TypeLatency      = "latency"
)

// AlertRule is one burn-rate alert on an objective: fire when the error
// budget burns faster than Burn× the sustainable rate over BOTH the
// short and the long trailing window (the short window gates on "still
// happening", the long window on "sustained enough to matter"), with
// an optional ForSeconds hold in pending before firing.
type AlertRule struct {
	// Severity labels the rule ("page", "ticket"); it distinguishes
	// multiple rules on one objective.
	Severity string `json:"severity"`
	// Burn is the burn-rate threshold: 1.0 consumes exactly the error
	// budget over the budget window, 14.4 is the classic fast-burn page.
	Burn float64 `json:"burn"`
	// ShortSeconds and LongSeconds are the two trailing windows.
	ShortSeconds float64 `json:"short_s"`
	LongSeconds  float64 `json:"long_s"`
	// ForSeconds holds the alert in pending until the condition has been
	// continuously true this long (0 = fire on first evaluation).
	ForSeconds float64 `json:"for_s,omitempty"`
}

func (r AlertRule) validate(obj string) error {
	if r.Severity == "" {
		return fmt.Errorf("slo: objective %q: alert rule needs a severity", obj)
	}
	if r.Burn <= 0 {
		return fmt.Errorf("slo: objective %q alert %q: burn %g must be positive", obj, r.Severity, r.Burn)
	}
	if r.ShortSeconds <= 0 || r.LongSeconds <= 0 {
		return fmt.Errorf("slo: objective %q alert %q: windows must be positive", obj, r.Severity)
	}
	if r.ShortSeconds > r.LongSeconds {
		return fmt.Errorf("slo: objective %q alert %q: short window %gs exceeds long window %gs", obj, r.Severity, r.ShortSeconds, r.LongSeconds)
	}
	if r.ForSeconds < 0 {
		return fmt.Errorf("slo: objective %q alert %q: for_s must be non-negative", obj, r.Severity)
	}
	return nil
}

// ObjectiveSpec declares one objective.
type ObjectiveSpec struct {
	Name string `json:"name"`
	// Type is "availability" (good = non-error requests) or "latency"
	// (good = requests at or under ThresholdMillis).
	Type string `json:"type"`
	// Target is the objective ratio in (0, 1), e.g. 0.995; the error
	// budget is 1-Target.
	Target float64 `json:"target"`
	// Endpoint scopes a latency objective to one endpoint's histogram
	// (the binder decides what the key means; adeptd uses its endpoint
	// names, "plan" by default).
	Endpoint string `json:"endpoint,omitempty"`
	// ThresholdMillis is the latency threshold (latency objectives
	// only). It snaps to the histogram's bucket ladder; the effective
	// bound is reported in the objective status.
	ThresholdMillis float64 `json:"threshold_ms,omitempty"`
	// Alerts are the burn-rate rules (default: a fast page and a slow
	// ticket scaled to the longest window).
	Alerts []AlertRule `json:"alerts,omitempty"`
}

func (o ObjectiveSpec) validate() error {
	if o.Name == "" {
		return fmt.Errorf("slo: objective needs a name")
	}
	switch o.Type {
	case TypeAvailability:
	case TypeLatency:
		if o.ThresholdMillis <= 0 {
			return fmt.Errorf("slo: latency objective %q needs a positive threshold_ms", o.Name)
		}
	default:
		return fmt.Errorf("slo: objective %q: unknown type %q (have %s, %s)", o.Name, o.Type, TypeAvailability, TypeLatency)
	}
	if o.Target <= 0 || o.Target >= 1 {
		return fmt.Errorf("slo: objective %q: target %g outside (0, 1)", o.Name, o.Target)
	}
	for _, r := range o.Alerts {
		if err := r.validate(o.Name); err != nil {
			return err
		}
	}
	return nil
}

// Config is the engine's declarative rule set: the JSON schema of
// adeptd's -slo-config file.
type Config struct {
	Objectives []ObjectiveSpec `json:"objectives"`
}

// Validate checks the whole rule set (unique names, per-objective
// validity).
func (c Config) Validate() error {
	if len(c.Objectives) == 0 {
		return fmt.Errorf("slo: config declares no objectives")
	}
	seen := make(map[string]bool, len(c.Objectives))
	for _, o := range c.Objectives {
		if err := o.validate(); err != nil {
			return err
		}
		if seen[o.Name] {
			return fmt.Errorf("slo: duplicate objective %q", o.Name)
		}
		seen[o.Name] = true
	}
	return nil
}

// ParseConfig decodes and validates a JSON rule set.
func ParseConfig(data []byte) (Config, error) {
	var c Config
	if err := json.Unmarshal(data, &c); err != nil {
		return Config{}, fmt.Errorf("slo: decode config: %w", err)
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// DefaultAlerts returns the stock two-rule ladder: a fast-burn page
// (no hold) and a slow-burn ticket (held one short window), both
// scaled from the given base window in seconds.
func DefaultAlerts(base float64) []AlertRule {
	return []AlertRule{
		{Severity: "page", Burn: 6, ShortSeconds: base, LongSeconds: 4 * base, ForSeconds: 0},
		{Severity: "ticket", Burn: 1, ShortSeconds: 4 * base, LongSeconds: 20 * base, ForSeconds: base},
	}
}

// DefaultConfig is the rule set adeptd runs without -slo-config: 99.5%
// availability across all endpoints and a 2s p-latency objective on
// the plan endpoint at 99%, each with the stock fast-page/slow-ticket
// burn ladder on a 30s base window.
func DefaultConfig() Config {
	return Config{Objectives: []ObjectiveSpec{
		{
			Name:   "availability",
			Type:   TypeAvailability,
			Target: 0.995,
			Alerts: DefaultAlerts(30),
		},
		{
			Name:            "plan-latency",
			Type:            TypeLatency,
			Target:          0.99,
			Endpoint:        "plan",
			ThresholdMillis: 2000,
			Alerts:          DefaultAlerts(30),
		},
	}}
}

// Alert states.
const (
	StateInactive = "inactive"
	StatePending  = "pending"
	StateFiring   = "firing"
	StateResolved = "resolved"
)

// Transition records one alert state change.
type Transition struct {
	At        time.Time `json:"at"`
	From      string    `json:"from"`
	To        string    `json:"to"`
	ShortBurn float64   `json:"short_burn"`
	LongBurn  float64   `json:"long_burn"`
}

// maxTransitions bounds the per-alert transition history.
const maxTransitions = 64

// alertState is one rule's live state machine.
type alertState struct {
	rule         AlertRule
	state        string
	since        time.Time
	pendingSince time.Time
	firedCount   int
	shortBurn    float64
	longBurn     float64
	transitions  []Transition
}

// objective is one bound objective's live state.
type objective struct {
	spec       ObjectiveSpec
	good       func() float64
	total      func() float64
	goodSeries *obs.Series
	totSeries  *obs.Series
	// effectiveThresholdMillis is the bucket-snapped latency bound the
	// binder actually enforces (latency objectives only).
	effectiveThresholdMillis float64
	alerts                   []*alertState
}

// Engine evaluates a rule set against (good, total) counter sources
// sampled into an obs.Store. Construction wires the rules; Bind
// attaches each objective's sources; Evaluate advances burn rates and
// alert state machines at an explicit timestamp, so the caller owns
// the clock (wall ticker in adeptd, virtual time in adeptsoak).
type Engine struct {
	mu         sync.Mutex
	store      *obs.Store
	journal    *obs.Journal
	objectives []*objective
	lastEval   time.Time
}

// NewEngine builds an engine over store; journal (optional) receives
// alert transitions.
func NewEngine(cfg Config, store *obs.Store, journal *obs.Journal) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if store == nil {
		return nil, fmt.Errorf("slo: nil store")
	}
	e := &Engine{store: store, journal: journal}
	for _, spec := range cfg.Objectives {
		o := &objective{spec: spec, effectiveThresholdMillis: spec.ThresholdMillis}
		for _, r := range spec.Alerts {
			o.alerts = append(o.alerts, &alertState{rule: r, state: StateInactive})
		}
		e.objectives = append(e.objectives, o)
	}
	return e, nil
}

// Bind attaches an objective's cumulative (good, total) sources and
// registers their series in the store under "slo_<name>_good" and
// "slo_<name>_total". effectiveThresholdMillis, when positive,
// overrides the spec threshold in status reports (the bucket-snapped
// bound a latency binder enforces).
func (e *Engine) Bind(name string, good, total func() float64, effectiveThresholdMillis float64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, o := range e.objectives {
		if o.spec.Name != name {
			continue
		}
		o.good = good
		o.total = total
		o.goodSeries = e.store.Watch("slo_"+name+"_good", good)
		o.totSeries = e.store.Watch("slo_"+name+"_total", total)
		if effectiveThresholdMillis > 0 {
			o.effectiveThresholdMillis = effectiveThresholdMillis
		}
		return nil
	}
	return fmt.Errorf("slo: no objective %q to bind", name)
}

// Unbound returns the names of objectives Bind has not been called
// for; the daemon fails fast on a config naming an endpoint it cannot
// serve.
func (e *Engine) Unbound() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []string
	for _, o := range e.objectives {
		if o.good == nil {
			out = append(out, o.spec.Name)
		}
	}
	return out
}

// burnOver computes the burn rate over one trailing window from the
// good/total series: (error rate over the window) / (error budget).
// A window with no traffic burns nothing.
func (o *objective) burnOver(window time.Duration, target float64) float64 {
	dTot, _, ok := o.totSeries.Delta(window)
	if !ok || dTot <= 0 {
		return 0
	}
	dGood, _, _ := o.goodSeries.Delta(window)
	errRate := (dTot - dGood) / dTot
	if errRate < 0 {
		errRate = 0
	}
	return errRate / (1 - target)
}

// Evaluate advances every objective's burn rates and alert state
// machines at timestamp now. Call it after the store sampled the same
// tick, so the trailing windows include the point at now.
func (e *Engine) Evaluate(now time.Time) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.lastEval = now
	for _, o := range e.objectives {
		if o.good == nil {
			continue
		}
		for _, a := range o.alerts {
			a.shortBurn = o.burnOver(secondsToDuration(a.rule.ShortSeconds), o.spec.Target)
			a.longBurn = o.burnOver(secondsToDuration(a.rule.LongSeconds), o.spec.Target)
			condition := a.shortBurn >= a.rule.Burn && a.longBurn >= a.rule.Burn
			switch a.state {
			case StateInactive, StateResolved:
				if condition {
					e.transition(o, a, StatePending, now)
					a.pendingSince = now
					if a.rule.ForSeconds == 0 {
						e.transition(o, a, StateFiring, now)
						a.firedCount++
					}
				}
			case StatePending:
				switch {
				case !condition:
					// A pending alert whose condition cleared never fired:
					// it goes back to inactive, not resolved.
					e.transition(o, a, StateInactive, now)
				case now.Sub(a.pendingSince) >= secondsToDuration(a.rule.ForSeconds):
					e.transition(o, a, StateFiring, now)
					a.firedCount++
				}
			case StateFiring:
				if !condition {
					e.transition(o, a, StateResolved, now)
				}
			}
		}
	}
}

func secondsToDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// transition moves an alert to a new state, records it, and journals
// it.
func (e *Engine) transition(o *objective, a *alertState, to string, now time.Time) {
	tr := Transition{At: now, From: a.state, To: to, ShortBurn: a.shortBurn, LongBurn: a.longBurn}
	a.state = to
	a.since = now
	a.transitions = append(a.transitions, tr)
	if len(a.transitions) > maxTransitions {
		a.transitions = a.transitions[len(a.transitions)-maxTransitions:]
	}
	if e.journal != nil {
		e.journal.Append("alert", fmt.Sprintf("%s/%s %s -> %s", o.spec.Name, a.rule.Severity, tr.From, tr.To), map[string]string{
			"objective":  o.spec.Name,
			"severity":   a.rule.Severity,
			"from":       tr.From,
			"to":         tr.To,
			"short_burn": fmt.Sprintf("%.3f", tr.ShortBurn),
			"long_burn":  fmt.Sprintf("%.3f", tr.LongBurn),
		})
	}
}

// WindowBurn reports one alert rule's current burn rates.
type WindowBurn struct {
	Severity     string  `json:"severity"`
	Burn         float64 `json:"burn_threshold"`
	ShortSeconds float64 `json:"short_s"`
	LongSeconds  float64 `json:"long_s"`
	ShortBurn    float64 `json:"short_burn"`
	LongBurn     float64 `json:"long_burn"`
	Condition    bool    `json:"condition"`
}

// ObjectiveStatus is one objective's snapshot, the element of
// GET /v1/slo.
type ObjectiveStatus struct {
	Name     string  `json:"name"`
	Type     string  `json:"type"`
	Target   float64 `json:"target"`
	Endpoint string  `json:"endpoint,omitempty"`
	// ThresholdMillis is the *effective* (bucket-snapped) latency bound.
	ThresholdMillis float64 `json:"threshold_ms,omitempty"`
	Good            float64 `json:"good"`
	Total           float64 `json:"total"`
	// Compliance is the lifetime good/total ratio (1 with no traffic).
	Compliance float64 `json:"compliance"`
	// ErrorBudget is 1-target; BudgetConsumed is the fraction of it
	// spent so far ((1-compliance)/(1-target), may exceed 1);
	// BudgetRemaining is 1-consumed (negative once overspent).
	ErrorBudget     float64      `json:"error_budget"`
	BudgetConsumed  float64      `json:"budget_consumed"`
	BudgetRemaining float64      `json:"budget_remaining"`
	Burns           []WindowBurn `json:"burns"`
	Bound           bool         `json:"bound"`
}

// Objectives snapshots every objective's status.
func (e *Engine) Objectives() []ObjectiveStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]ObjectiveStatus, 0, len(e.objectives))
	for _, o := range e.objectives {
		st := ObjectiveStatus{
			Name:        o.spec.Name,
			Type:        o.spec.Type,
			Target:      o.spec.Target,
			Endpoint:    o.spec.Endpoint,
			Compliance:  1,
			ErrorBudget: 1 - o.spec.Target,
			Bound:       o.good != nil,
		}
		if o.spec.Type == TypeLatency {
			st.ThresholdMillis = o.effectiveThresholdMillis
		}
		if o.good != nil {
			st.Good = o.good()
			st.Total = o.total()
			if st.Total > 0 {
				st.Compliance = st.Good / st.Total
			}
			st.BudgetConsumed = (1 - st.Compliance) / (1 - o.spec.Target)
			st.BudgetRemaining = 1 - st.BudgetConsumed
			// Guard against float dust on the fully compliant path.
			if math.Abs(st.BudgetConsumed) < 1e-12 {
				st.BudgetConsumed = 0
				st.BudgetRemaining = 1
			}
		}
		for _, a := range o.alerts {
			st.Burns = append(st.Burns, WindowBurn{
				Severity:     a.rule.Severity,
				Burn:         a.rule.Burn,
				ShortSeconds: a.rule.ShortSeconds,
				LongSeconds:  a.rule.LongSeconds,
				ShortBurn:    a.shortBurn,
				LongBurn:     a.longBurn,
				Condition:    a.shortBurn >= a.rule.Burn && a.longBurn >= a.rule.Burn,
			})
		}
		out = append(out, st)
	}
	return out
}

// AlertStatus is one alert rule's snapshot, the element of
// GET /v1/alerts.
type AlertStatus struct {
	// Name is "<objective>/<severity>".
	Name        string       `json:"name"`
	Objective   string       `json:"objective"`
	Severity    string       `json:"severity"`
	State       string       `json:"state"`
	Since       time.Time    `json:"since,omitzero"`
	FiredCount  int          `json:"fired_count"`
	Rule        AlertRule    `json:"rule"`
	ShortBurn   float64      `json:"short_burn"`
	LongBurn    float64      `json:"long_burn"`
	Transitions []Transition `json:"transitions,omitempty"`
}

// Alerts snapshots every alert rule's state, sorted by name.
func (e *Engine) Alerts() []AlertStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []AlertStatus
	for _, o := range e.objectives {
		for _, a := range o.alerts {
			out = append(out, AlertStatus{
				Name:        o.spec.Name + "/" + a.rule.Severity,
				Objective:   o.spec.Name,
				Severity:    a.rule.Severity,
				State:       a.state,
				Since:       a.since,
				FiredCount:  a.firedCount,
				Rule:        a.rule,
				ShortBurn:   a.shortBurn,
				LongBurn:    a.longBurn,
				Transitions: append([]Transition(nil), a.transitions...),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
