package slo

import (
	"strings"
	"testing"
	"time"

	"adept/internal/obs"
)

func ts(sec int) time.Time {
	return time.Unix(1_700_000_000+int64(sec), 0).UTC()
}

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []struct {
		name string
		json string
		want string
	}{
		{"empty", `{}`, "no objectives"},
		{"no name", `{"objectives":[{"type":"availability","target":0.9}]}`, "needs a name"},
		{"bad type", `{"objectives":[{"name":"x","type":"weird","target":0.9}]}`, "unknown type"},
		{"bad target", `{"objectives":[{"name":"x","type":"availability","target":1.5}]}`, "outside (0, 1)"},
		{"latency no threshold", `{"objectives":[{"name":"x","type":"latency","target":0.9}]}`, "threshold_ms"},
		{"dup", `{"objectives":[{"name":"x","type":"availability","target":0.9},{"name":"x","type":"availability","target":0.9}]}`, "duplicate"},
		{"bad windows", `{"objectives":[{"name":"x","type":"availability","target":0.9,"alerts":[{"severity":"page","burn":2,"short_s":60,"long_s":30}]}]}`, "exceeds long window"},
		{"bad burn", `{"objectives":[{"name":"x","type":"availability","target":0.9,"alerts":[{"severity":"page","burn":0,"short_s":30,"long_s":60}]}]}`, "must be positive"},
	}
	for _, c := range bad {
		_, err := ParseConfig([]byte(c.json))
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
	good := `{"objectives":[{"name":"avail","type":"availability","target":0.99,
		"alerts":[{"severity":"page","burn":10,"short_s":30,"long_s":120,"for_s":10}]}]}`
	cfg, err := ParseConfig([]byte(good))
	if err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	if len(cfg.Objectives) != 1 || cfg.Objectives[0].Alerts[0].Burn != 10 {
		t.Fatalf("parsed config = %+v", cfg)
	}
}

// engineFixture binds one availability objective (target 0.9, budget 10%)
// with a single alert rule to hand-controlled good/total counters.
func engineFixture(t *testing.T, rule AlertRule) (*Engine, *obs.Journal, *float64, *float64) {
	t.Helper()
	store := obs.NewStore(256)
	journal := obs.NewJournal(256)
	cfg := Config{Objectives: []ObjectiveSpec{{
		Name:   "avail",
		Type:   TypeAvailability,
		Target: 0.9,
		Alerts: []AlertRule{rule},
	}}}
	eng, err := NewEngine(cfg, store, journal)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	good := new(float64)
	total := new(float64)
	if err := eng.Bind("avail", func() float64 { return *good }, func() float64 { return *total }, 0); err != nil {
		t.Fatalf("Bind: %v", err)
	}
	if ub := eng.Unbound(); len(ub) != 0 {
		t.Fatalf("Unbound = %v, want none", ub)
	}
	// tick advances one second: accrue (dGood, dTotal), sample, evaluate.
	return eng, journal, good, total
}

func oneAlert(t *testing.T, eng *Engine) AlertStatus {
	t.Helper()
	alerts := eng.Alerts()
	if len(alerts) != 1 {
		t.Fatalf("Alerts = %v, want exactly one", alerts)
	}
	return alerts[0]
}

func TestEngineBurnAndAlertLifecycle(t *testing.T) {
	// Budget is 10%. 50% errors => burn 5 over any window that saw them.
	rule := AlertRule{Severity: "page", Burn: 4, ShortSeconds: 3, LongSeconds: 10, ForSeconds: 2}
	eng, journal, good, total := engineFixture(t, rule)
	store := engStore(eng)

	step := func(sec int, dGood, dTotal float64) {
		*good += dGood
		*total += dTotal
		now := ts(sec)
		store.Sample(now)
		eng.Evaluate(now)
	}

	// 10s of clean traffic: inactive throughout.
	sec := 0
	for ; sec < 10; sec++ {
		step(sec, 10, 10)
	}
	if st := oneAlert(t, eng); st.State != StateInactive {
		t.Fatalf("clean traffic: state = %s, want inactive", st.State)
	}

	// 50% errors: burn 5 > 4 in the short window after a couple of ticks,
	// and the long window (10s) also crosses 4 once enough bad seconds
	// accumulate. Walk until pending appears.
	for ; sec < 30; sec++ {
		step(sec, 5, 10)
		if oneAlert(t, eng).State == StatePending {
			break
		}
	}
	st := oneAlert(t, eng)
	if st.State != StatePending {
		t.Fatalf("sustained errors never reached pending; state = %s, burns = %g/%g", st.State, st.ShortBurn, st.LongBurn)
	}
	pendingAt := sec

	// Hold the errors: ForSeconds=2 promotes pending -> firing.
	for sec++; sec <= pendingAt+3; sec++ {
		step(sec, 5, 10)
	}
	st = oneAlert(t, eng)
	if st.State != StateFiring || st.FiredCount != 1 {
		t.Fatalf("after hold: state = %s fired=%d, want firing/1", st.State, st.FiredCount)
	}

	// Clean traffic again: short window (3s) clears first and the AND
	// condition drops, resolving the alert.
	for ; sec < 100; sec++ {
		step(sec, 10, 10)
		if oneAlert(t, eng).State == StateResolved {
			break
		}
	}
	st = oneAlert(t, eng)
	if st.State != StateResolved {
		t.Fatalf("alert never resolved; state = %s, burns = %g/%g", st.State, st.ShortBurn, st.LongBurn)
	}

	// Transition history: inactive -> pending -> firing -> resolved.
	var kinds []string
	for _, tr := range st.Transitions {
		kinds = append(kinds, tr.From+">"+tr.To)
	}
	want := []string{"inactive>pending", "pending>firing", "firing>resolved"}
	if len(kinds) != len(want) {
		t.Fatalf("transitions = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("transition %d = %s, want %s", i, kinds[i], want[i])
		}
	}

	// Each transition was journaled with the objective/severity fields.
	var alertEvents []obs.Event
	for _, e := range journal.Snapshot() {
		if e.Kind == "alert" {
			alertEvents = append(alertEvents, e)
		}
	}
	if len(alertEvents) != 3 {
		t.Fatalf("journal has %d alert events, want 3: %v", len(alertEvents), alertEvents)
	}
	if f := alertEvents[0].Fields; f["objective"] != "avail" || f["severity"] != "page" || f["to"] != StatePending {
		t.Fatalf("first journal event fields = %v", f)
	}

	// Objective status agrees with the raw counters.
	objs := eng.Objectives()
	if len(objs) != 1 {
		t.Fatalf("Objectives = %v", objs)
	}
	o := objs[0]
	if o.Good != *good || o.Total != *total {
		t.Fatalf("status counters (%g, %g) != raw (%g, %g)", o.Good, o.Total, *good, *total)
	}
	wantCompliance := *good / *total
	if o.Compliance != wantCompliance {
		t.Fatalf("compliance = %g, want %g", o.Compliance, wantCompliance)
	}
	wantConsumed := (1 - wantCompliance) / (1 - 0.9)
	if diff := o.BudgetConsumed - wantConsumed; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("budget consumed = %g, want %g", o.BudgetConsumed, wantConsumed)
	}
}

func TestEnginePendingClearsToInactive(t *testing.T) {
	// Long ForSeconds: the condition clears before the hold elapses, so
	// the alert goes pending -> inactive and never fires.
	rule := AlertRule{Severity: "page", Burn: 4, ShortSeconds: 2, LongSeconds: 4, ForSeconds: 30}
	eng, _, good, total := engineFixture(t, rule)
	store := engStore(eng)
	step := func(sec int, dGood, dTotal float64) {
		*good += dGood
		*total += dTotal
		store.Sample(ts(sec))
		eng.Evaluate(ts(sec))
	}
	sec := 0
	for ; sec < 6; sec++ {
		step(sec, 10, 10)
	}
	for ; sec < 12; sec++ {
		step(sec, 0, 10) // 100% errors, burn 10
	}
	if st := oneAlert(t, eng); st.State != StatePending {
		t.Fatalf("state = %s, want pending", st.State)
	}
	for ; sec < 30; sec++ {
		step(sec, 10, 10)
	}
	st := oneAlert(t, eng)
	if st.State != StateInactive || st.FiredCount != 0 {
		t.Fatalf("state = %s fired=%d, want inactive/0 (pending that clears never fired)", st.State, st.FiredCount)
	}
}

func TestEngineNoTrafficBurnsNothing(t *testing.T) {
	rule := AlertRule{Severity: "page", Burn: 1, ShortSeconds: 2, LongSeconds: 4}
	eng, _, _, _ := engineFixture(t, rule)
	store := engStore(eng)
	for sec := 0; sec < 10; sec++ {
		store.Sample(ts(sec))
		eng.Evaluate(ts(sec))
	}
	st := oneAlert(t, eng)
	if st.State != StateInactive || st.ShortBurn != 0 || st.LongBurn != 0 {
		t.Fatalf("idle engine: state=%s burns=%g/%g, want inactive 0/0", st.State, st.ShortBurn, st.LongBurn)
	}
	o := eng.Objectives()[0]
	if o.Compliance != 1 || o.BudgetConsumed != 0 || o.BudgetRemaining != 1 {
		t.Fatalf("idle objective: %+v", o)
	}
}

func TestBindUnknownObjective(t *testing.T) {
	store := obs.NewStore(16)
	eng, err := NewEngine(DefaultConfig(), store, nil)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if err := eng.Bind("nope", func() float64 { return 0 }, func() float64 { return 0 }, 0); err == nil {
		t.Fatalf("Bind of unknown objective succeeded")
	}
	ub := eng.Unbound()
	if len(ub) != 2 {
		t.Fatalf("Unbound = %v, want both defaults", ub)
	}
	// Unbound objectives report Bound=false and evaluate as no-ops.
	eng.Evaluate(ts(0))
	for _, o := range eng.Objectives() {
		if o.Bound {
			t.Fatalf("objective %s claims bound", o.Name)
		}
	}
}

// engStore digs the store back out of the engine for test stepping.
func engStore(e *Engine) *obs.Store { return e.store }
