package baseline

import (
	"context"
	"fmt"
	"math"

	"adept/internal/core"
	"adept/internal/hierarchy"
	"adept/internal/model"
)

// MaxExhaustiveNodes bounds the pool size Exhaustive accepts; the search is
// Θ(n·nⁿ) and becomes impractical beyond this.
const MaxExhaustiveNodes = 8

// parentUnused marks a pool node left out of the deployment in the parent
// vector encoding used by the exhaustive search.
const parentUnused = -2

// Exhaustive enumerates every valid deployment over the pool (including
// deployments that leave nodes unused) and returns the one with the highest
// demand-capped throughput, breaking ties towards fewer nodes. It is the
// ground-truth optimum for the small heterogeneous pools used in tests and
// benchmarks.
//
// The enumeration shares one scratch arena across all candidate vectors and
// maintains child counts incrementally along the recursion, so evaluating a
// leaf allocates nothing — the dominant cost of the pre-refactor version
// was rebuilding per-vector children/agent/server slices on the heap.
type Exhaustive struct{}

// Name implements core.Planner.
func (*Exhaustive) Name() string { return "exhaustive" }

// Plan implements core.Planner.
//
//adeptvet:allow ctxflow context-free convenience wrapper; callers that want cancellation use PlanContext
func (e *Exhaustive) Plan(req core.Request) (*core.Plan, error) {
	return e.PlanContext(context.Background(), req)
}

// ctxPollInterval is how many candidate parent vectors the exhaustive
// search evaluates between context polls: frequent enough to cancel a
// Θ(n·nⁿ) enumeration promptly, rare enough to keep the poll off the
// hot path.
const ctxPollInterval = 4096

// exhaustiveScratch is the reusable per-search arena.
type exhaustiveScratch struct {
	parent   []int // parentUnused, -1 (root), or parent index
	childCnt []int // maintained incrementally by the recursion
	stack    []int
	seen     []bool
}

// PlanContext implements core.Planner; the enumeration aborts within
// ctxPollInterval candidate evaluations of the context firing.
func (e *Exhaustive) PlanContext(ctx context.Context, req core.Request) (*core.Plan, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	n := len(req.Platform.Nodes)
	if n > MaxExhaustiveNodes {
		return nil, fmt.Errorf("baseline: exhaustive search limited to %d nodes, got %d", MaxExhaustiveNodes, n)
	}

	sc := &exhaustiveScratch{
		parent:   make([]int, n),
		childCnt: make([]int, n),
		stack:    make([]int, 0, n),
		seen:     make([]bool, n),
	}
	bestCapped := -1.0
	bestUsed := 0
	var bestVec []int
	var ctxErr error
	sincePoll := 0

	check := func() {
		sincePoll++
		if sincePoll >= ctxPollInterval {
			sincePoll = 0
			ctxErr = core.CheckContext(ctx, e.Name())
		}
		rho, used, ok := evalParentVector(req, sc)
		if !ok {
			return
		}
		capped := req.Demand.Cap(rho)
		if capped > bestCapped || (capped == bestCapped && used < bestUsed) {
			bestCapped, bestUsed = capped, used
			bestVec = append(bestVec[:0], sc.parent...)
		}
	}

	parent := sc.parent
	var rec func(i, rootIdx int)
	rec = func(i, rootIdx int) {
		if ctxErr != nil {
			return
		}
		if i == n {
			check()
			return
		}
		if i == rootIdx {
			parent[i] = -1
			rec(i+1, rootIdx)
			return
		}
		parent[i] = parentUnused
		rec(i+1, rootIdx)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			parent[i] = j
			sc.childCnt[j]++
			rec(i+1, rootIdx)
			sc.childCnt[j]--
		}
	}
	for rootIdx := 0; rootIdx < n && ctxErr == nil; rootIdx++ {
		rec(0, rootIdx)
	}
	if ctxErr != nil {
		return nil, ctxErr
	}
	if bestVec == nil {
		return nil, fmt.Errorf("baseline: exhaustive search found no valid deployment")
	}

	h := buildFromParentVector(req, bestVec)
	if h == nil {
		return nil, fmt.Errorf("baseline: internal error rebuilding best deployment")
	}
	if err := h.Validate(hierarchy.Final); err != nil {
		return nil, fmt.Errorf("baseline: exhaustive produced invalid deployment: %w", err)
	}
	return core.Finalize(e.Name(), req, h)
}

// evalParentVector validates and evaluates the deployment encoded by the
// scratch's parent vector without materialising a hierarchy or allocating.
// ok is false when the vector does not encode a valid deployment.
func evalParentVector(req core.Request, sc *exhaustiveScratch) (rho float64, used int, ok bool) {
	parent, childCnt := sc.parent, sc.childCnt
	rootIdx := -1
	for i, p := range parent {
		switch {
		case p == parentUnused:
			continue
		case p == -1:
			rootIdx = i
			used++
		default:
			if parent[p] == parentUnused {
				return 0, 0, false // child of an unused node
			}
			used++
		}
	}
	if rootIdx == -1 || used < 2 || childCnt[rootIdx] < 1 {
		return 0, 0, false
	}
	// Non-root internal nodes need at least two children (paper invariant).
	for i, p := range parent {
		if p == parentUnused || i == rootIdx {
			continue
		}
		if childCnt[i] == 1 {
			return 0, 0, false
		}
	}
	// Reachability from root must cover all used nodes (detects cycles).
	seen := sc.seen
	for i := range seen {
		seen[i] = false
	}
	stack := append(sc.stack[:0], rootIdx)
	reach := 0
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[i] {
			return 0, 0, false
		}
		seen[i] = true
		reach++
		for j, p := range parent {
			if p == i {
				stack = append(stack, j)
			}
		}
	}
	sc.stack = stack[:0]
	if reach != used {
		return 0, 0, false
	}

	// One allocation-free model pass: agents contribute their scheduling
	// throughput (at their own link), servers their prediction throughput
	// and the Eq. 10 num/den accumulators (summed in index order, exactly
	// as model.ServerCompTime would over the server power slice); the
	// service transfer is charged at the slowest server link, matching
	// model.ServiceThroughputLinks.
	c, bw, wapp := req.Costs, req.Platform.Bandwidth, req.Wapp
	nodes := req.Platform.Nodes
	sched := math.Inf(1)
	num, den := 1.0, 0.0
	minBW := math.Inf(1)
	nServers := 0
	for i, p := range parent {
		if p == parentUnused {
			continue
		}
		w := nodes[i].Power
		nbw := nodes[i].Link(bw)
		if childCnt[i] > 0 {
			if t := model.AgentThroughput(c, nbw, w, childCnt[i]); t < sched {
				sched = t
			}
		} else {
			nServers++
			num += c.ServerWpre / wapp
			den += w / wapp
			if nbw < minBW {
				minBW = nbw
			}
			if t := model.ServerPredictionThroughput(c, nbw, w); t < sched {
				sched = t
			}
		}
	}
	if nServers == 0 {
		return 0, 0, false
	}
	service := 1 / (model.ServerReceiveTime(c, minBW) + model.ServerSendTime(c, minBW) + num/den)
	return math.Min(sched, service), used, true
}

// buildFromParentVector materialises the hierarchy encoded by a (validated)
// parent vector.
func buildFromParentVector(req core.Request, parent []int) *hierarchy.Hierarchy {
	n := len(parent)
	children := make([][]int, n)
	rootIdx := -1
	for i, p := range parent {
		switch {
		case p == parentUnused:
		case p == -1:
			rootIdx = i
		default:
			children[p] = append(children[p], i)
		}
	}
	nodes := req.Platform.Nodes
	h := hierarchy.New(req.Platform.Name + "-exhaustive")
	rootID, err := h.AddRoot(nodes[rootIdx].Name, nodes[rootIdx].Power, nodes[rootIdx].LinkBandwidth)
	if err != nil {
		return nil
	}
	var rec func(idx, id int) bool
	rec = func(idx, id int) bool {
		for _, c := range children[idx] {
			var cid int
			var err error
			if len(children[c]) > 0 {
				cid, err = h.AddAgent(id, nodes[c].Name, nodes[c].Power, nodes[c].LinkBandwidth)
			} else {
				cid, err = h.AddServer(id, nodes[c].Name, nodes[c].Power, nodes[c].LinkBandwidth)
			}
			if err != nil {
				return false
			}
			if !rec(c, cid) {
				return false
			}
		}
		return true
	}
	if !rec(rootIdx, rootID) {
		return nil
	}
	return h
}
