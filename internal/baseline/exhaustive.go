package baseline

import (
	"context"
	"fmt"

	"adept/internal/core"
	"adept/internal/hierarchy"
	"adept/internal/model"
)

// MaxExhaustiveNodes bounds the pool size Exhaustive accepts; the search is
// Θ(n·nⁿ) and becomes impractical beyond this.
const MaxExhaustiveNodes = 8

// parentUnused marks a pool node left out of the deployment in the parent
// vector encoding used by the exhaustive search.
const parentUnused = -2

// Exhaustive enumerates every valid deployment over the pool (including
// deployments that leave nodes unused) and returns the one with the highest
// demand-capped throughput, breaking ties towards fewer nodes. It is the
// ground-truth optimum for the small heterogeneous pools used in tests and
// benchmarks.
type Exhaustive struct{}

// Name implements core.Planner.
func (*Exhaustive) Name() string { return "exhaustive" }

// Plan implements core.Planner.
func (e *Exhaustive) Plan(req core.Request) (*core.Plan, error) {
	return e.PlanContext(context.Background(), req)
}

// ctxPollInterval is how many candidate parent vectors the exhaustive
// search evaluates between context polls: frequent enough to cancel a
// Θ(n·nⁿ) enumeration promptly, rare enough to keep the poll off the
// hot path.
const ctxPollInterval = 4096

// PlanContext implements core.Planner; the enumeration aborts within
// ctxPollInterval candidate evaluations of the context firing.
func (e *Exhaustive) PlanContext(ctx context.Context, req core.Request) (*core.Plan, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	n := len(req.Platform.Nodes)
	if n > MaxExhaustiveNodes {
		return nil, fmt.Errorf("baseline: exhaustive search limited to %d nodes, got %d", MaxExhaustiveNodes, n)
	}

	parent := make([]int, n) // parentUnused, -1 (root), or parent index
	bestCapped := -1.0
	bestUsed := 0
	var bestVec []int
	var bestEval model.Evaluation
	var ctxErr error
	sincePoll := 0

	check := func() {
		sincePoll++
		if sincePoll >= ctxPollInterval {
			sincePoll = 0
			ctxErr = core.CheckContext(ctx, e.Name())
		}
		ev, used, ok := evalParentVector(req, parent)
		if !ok {
			return
		}
		capped := req.Demand.Cap(ev.Rho)
		if capped > bestCapped || (capped == bestCapped && used < bestUsed) {
			bestCapped, bestUsed, bestEval = capped, used, ev
			bestVec = append(bestVec[:0], parent...)
		}
	}

	var rec func(i, rootIdx int)
	rec = func(i, rootIdx int) {
		if ctxErr != nil {
			return
		}
		if i == n {
			check()
			return
		}
		if i == rootIdx {
			parent[i] = -1
			rec(i+1, rootIdx)
			return
		}
		parent[i] = parentUnused
		rec(i+1, rootIdx)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			parent[i] = j
			rec(i+1, rootIdx)
		}
	}
	for rootIdx := 0; rootIdx < n && ctxErr == nil; rootIdx++ {
		rec(0, rootIdx)
	}
	if ctxErr != nil {
		return nil, ctxErr
	}
	if bestVec == nil {
		return nil, fmt.Errorf("baseline: exhaustive search found no valid deployment")
	}

	h := buildFromParentVector(req, bestVec)
	if h == nil {
		return nil, fmt.Errorf("baseline: internal error rebuilding best deployment")
	}
	if err := h.Validate(hierarchy.Final); err != nil {
		return nil, fmt.Errorf("baseline: exhaustive produced invalid deployment: %w", err)
	}
	return &core.Plan{
		Hierarchy: h,
		Eval:      bestEval,
		Capped:    bestCapped,
		NodesUsed: bestUsed,
		Planner:   e.Name(),
	}, nil
}

// evalParentVector validates and evaluates the deployment encoded by the
// parent vector without materialising a hierarchy. ok is false when the
// vector does not encode a valid deployment.
func evalParentVector(req core.Request, parent []int) (ev model.Evaluation, used int, ok bool) {
	n := len(parent)
	children := make([][]int, n)
	rootIdx := -1
	for i, p := range parent {
		switch {
		case p == parentUnused:
			continue
		case p == -1:
			rootIdx = i
			used++
		default:
			if parent[p] == parentUnused {
				return ev, 0, false // child of an unused node
			}
			children[p] = append(children[p], i)
			used++
		}
	}
	if rootIdx == -1 || used < 2 || len(children[rootIdx]) < 1 {
		return ev, 0, false
	}
	// Non-root internal nodes need at least two children (paper invariant).
	for i, p := range parent {
		if p == parentUnused || i == rootIdx {
			continue
		}
		if len(children[i]) == 1 {
			return ev, 0, false
		}
	}
	// Reachability from root must cover all used nodes (detects cycles).
	seen := make([]bool, n)
	stack := []int{rootIdx}
	reach := 0
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[i] {
			return ev, 0, false
		}
		seen[i] = true
		reach++
		stack = append(stack, children[i]...)
	}
	if reach != used {
		return ev, 0, false
	}

	var agents []model.Agent
	var servers []float64
	nodes := req.Platform.Nodes
	for i, p := range parent {
		if p == parentUnused {
			continue
		}
		if len(children[i]) > 0 {
			agents = append(agents, model.Agent{Power: nodes[i].Power, Degree: len(children[i])})
		} else {
			servers = append(servers, nodes[i].Power)
		}
	}
	if len(servers) == 0 {
		return ev, 0, false
	}
	return model.Evaluate(req.Costs, req.Platform.Bandwidth, req.Wapp, agents, servers), used, true
}

// buildFromParentVector materialises the hierarchy encoded by a (validated)
// parent vector.
func buildFromParentVector(req core.Request, parent []int) *hierarchy.Hierarchy {
	n := len(parent)
	children := make([][]int, n)
	rootIdx := -1
	for i, p := range parent {
		switch {
		case p == parentUnused:
		case p == -1:
			rootIdx = i
		default:
			children[p] = append(children[p], i)
		}
	}
	nodes := req.Platform.Nodes
	h := hierarchy.New(req.Platform.Name + "-exhaustive")
	rootID, err := h.AddRoot(nodes[rootIdx].Name, nodes[rootIdx].Power)
	if err != nil {
		return nil
	}
	var rec func(idx, id int) bool
	rec = func(idx, id int) bool {
		for _, c := range children[idx] {
			var cid int
			var err error
			if len(children[c]) > 0 {
				cid, err = h.AddAgent(id, nodes[c].Name, nodes[c].Power)
			} else {
				cid, err = h.AddServer(id, nodes[c].Name, nodes[c].Power)
			}
			if err != nil {
				return false
			}
			if !rec(c, cid) {
				return false
			}
		}
		return true
	}
	if !rec(rootIdx, rootID) {
		return nil
	}
	return h
}
