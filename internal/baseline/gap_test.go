package baseline_test

import (
	"testing"

	"adept/internal/baseline"
	"adept/internal/core"
	"adept/internal/model"
	"adept/internal/platform"
	"adept/internal/scenario"
	"adept/internal/workload"
)

// paperGap is the optimality margin the test enforces: Table 4 of the
// paper observes the heuristic as low as ~82% of the best-known deployment
// in its worst mid-size rows and optimal at the extremes, so a 20% gap is
// the paper's own observed envelope. The swap-refined heuristic is held to
// that bound against the exhaustive ground truth (measured worst on this
// sweep: ~0.83, a two-level split the flat star plus local moves cannot
// express); the plain heuristic legitimately falls further behind on tiny
// heterogeneous pools (it must draft the most powerful node as the root
// agent even when that node would serve better) — the swap and drop moves
// exist to close exactly that. The portfolio planner closes the remainder:
// internal/portfolio's tests pin it to the exhaustive optimum on these
// pools.
const paperGap = 0.20

// gapPlatforms enumerates every (family, size, seed) platform the gap
// sweep covers: all scenario families plus uniform-random and homogeneous
// pools, sizes 2 through 6 — small enough for the exhaustive optimum.
func gapPlatforms(t *testing.T) []*platform.Platform {
	t.Helper()
	var out []*platform.Platform
	for n := 2; n <= 6; n++ {
		for seed := int64(1); seed <= 4; seed++ {
			for _, fam := range scenario.Families() {
				p, err := scenario.Spec{Family: fam, N: n, Seed: seed * 101}.Generate()
				if err != nil {
					t.Fatal(err)
				}
				out = append(out, p)
			}
			uni, err := platform.Generate(platform.GenSpec{
				Name: "uni", N: n, Bandwidth: 100, MinPower: 20, MaxPower: 2000, Seed: seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, uni)
			out = append(out, platform.Homogeneous("homo", n, 400, 100))
		}
	}
	return out
}

// TestHeuristicOptimalityGap holds the swap-refined heuristic within the
// paper's observed gap of the exhaustive optimum on every enumerated small
// platform. On failure the offending platform is dumped as JSON so the
// case can be replayed exactly.
func TestHeuristicOptimalityGap(t *testing.T) {
	refined := &core.SwapRefiner{Inner: core.NewHeuristic()}
	exhaustive := &baseline.Exhaustive{}
	wapps := []float64{workload.DGEMM{N: 10}.MFlop(), workload.DGEMM{N: 100}.MFlop(), workload.DGEMM{N: 310}.MFlop()}
	worst := 1.0
	for _, plat := range gapPlatforms(t) {
		for _, wapp := range wapps {
			req := core.Request{Platform: plat, Costs: model.DIETDefaults(), Wapp: wapp}
			opt, err := exhaustive.Plan(req)
			if err != nil {
				t.Fatalf("%s: exhaustive: %v", plat.Name, err)
			}
			got, err := refined.Plan(req)
			if err != nil {
				t.Fatalf("%s: refined heuristic: %v", plat.Name, err)
			}
			ratio := got.Eval.Rho / opt.Eval.Rho
			if ratio < worst {
				worst = ratio
			}
			if ratio < 1-paperGap {
				data, _ := plat.MarshalIndent()
				t.Errorf("refined heuristic at %.1f%% of optimum (rho %.4f vs %.4f, wapp %.1f) on platform:\n%s",
					100*ratio, got.Eval.Rho, opt.Eval.Rho, wapp, data)
			}
		}
	}
	t.Logf("worst refined-heuristic/exhaustive ratio: %.4f over %d platforms x %d workloads",
		worst, len(gapPlatforms(t)), len(wapps))
}

// TestExhaustiveIsAnUpperBound: no baseline may beat the exhaustive
// optimum on the pools it can enumerate — the ground truth of the gap
// sweep must actually be the ground truth.
func TestExhaustiveIsAnUpperBound(t *testing.T) {
	exhaustive := &baseline.Exhaustive{}
	wapp := workload.DGEMM{N: 100}.MFlop()
	for _, plat := range gapPlatforms(t)[:20] {
		req := core.Request{Platform: plat, Costs: model.DIETDefaults(), Wapp: wapp}
		opt, err := exhaustive.Plan(req)
		if err != nil {
			t.Fatal(err)
		}
		for _, pl := range []core.Planner{&baseline.Star{}, &baseline.Balanced{}, &baseline.OptimalDAry{}} {
			bp, err := pl.Plan(req)
			if err != nil {
				t.Fatalf("%s: %v", pl.Name(), err)
			}
			if bp.Eval.Rho > opt.Eval.Rho*(1+1e-9) {
				t.Errorf("%s beats the exhaustive optimum on %s: %.6f > %.6f", pl.Name(), plat.Name, bp.Eval.Rho, opt.Eval.Rho)
			}
		}
	}
}
