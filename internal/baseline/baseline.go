// Package baseline implements the comparison deployment planners of the
// paper's evaluation: the intuitive star and balanced hierarchies of §5.3,
// the optimal homogeneous complete-spanning-d-ary-tree algorithm of
// reference [10] (Table 4's "Homo. Deg." column), an exhaustive optimal
// search for small pools (Table 4's "Opt. Deg." column), and a seeded
// random planner used by property tests.
package baseline

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"adept/internal/core"
	"adept/internal/hierarchy"
	"adept/internal/model"
	"adept/internal/platform"
)

// Star deploys the most powerful node as the lone agent and every other
// pool node as a direct server child — the paper's first intuitive
// comparison deployment.
type Star struct {
	// MaxServers optionally caps how many servers are attached (0 = all).
	MaxServers int
}

// Name implements core.Planner.
func (*Star) Name() string { return "star" }

// PlanContext implements core.Planner. Building a star is linear in the
// pool, so the context is only checked once up front.
func (s *Star) PlanContext(ctx context.Context, req core.Request) (*core.Plan, error) {
	if err := core.CheckContext(ctx, s.Name()); err != nil {
		return nil, err
	}
	return s.Plan(req)
}

// Plan implements core.Planner.
func (s *Star) Plan(req core.Request) (*core.Plan, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	nodes := req.Platform.SortByPowerDesc()
	h := hierarchy.New(req.Platform.Name + "-star")
	rootID, err := h.AddRoot(nodes[0].Name, nodes[0].Power, nodes[0].LinkBandwidth)
	if err != nil {
		return nil, err
	}
	limit := len(nodes) - 1
	if s.MaxServers > 0 && s.MaxServers < limit {
		limit = s.MaxServers
	}
	for _, n := range nodes[1 : 1+limit] {
		if _, err := h.AddServer(rootID, n.Name, n.Power, n.LinkBandwidth); err != nil {
			return nil, err
		}
	}
	return core.Finalize(s.Name(), req, h)
}

// Balanced deploys the two-level balanced hierarchy of §5.3: one top agent
// connected to Degree agents, each connected to roughly equal numbers of
// servers (the paper used degree 14 on 200 nodes: 1 + 14 agents + 13×14+3
// servers). The planner is deliberately heterogeneity-naive — nodes are
// taken in platform order, exactly how an administrator would wire an
// "intuitive" deployment without measuring node powers.
type Balanced struct {
	// Degree is the top agent's number of child agents. Zero picks
	// round(sqrt(n)) to keep the two levels balanced.
	Degree int
}

// Name implements core.Planner.
func (*Balanced) Name() string { return "balanced" }

// PlanContext implements core.Planner. Like Star, construction is linear,
// so the context is checked once up front.
func (b *Balanced) PlanContext(ctx context.Context, req core.Request) (*core.Plan, error) {
	if err := core.CheckContext(ctx, b.Name()); err != nil {
		return nil, err
	}
	return b.Plan(req)
}

// Plan implements core.Planner.
func (b *Balanced) Plan(req core.Request) (*core.Plan, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	nodes := req.Platform.Nodes
	n := len(nodes)
	deg := b.Degree
	if deg <= 0 {
		deg = int(math.Round(math.Sqrt(float64(n))))
	}
	if deg < 1 {
		deg = 1
	}
	// Need 1 root + deg agents + at least 2 servers per agent.
	for deg > 1 && 1+deg+2*deg > n {
		deg--
	}
	if 1+deg+2*deg > n {
		// Pool too small for two levels: degenerate to a star.
		return (&Star{}).Plan(req)
	}
	h := hierarchy.New(req.Platform.Name + "-balanced")
	rootID, err := h.AddRoot(nodes[0].Name, nodes[0].Power, nodes[0].LinkBandwidth)
	if err != nil {
		return nil, err
	}
	agentIDs := make([]int, deg)
	for i := 0; i < deg; i++ {
		id, err := h.AddAgent(rootID, nodes[1+i].Name, nodes[1+i].Power, nodes[1+i].LinkBandwidth)
		if err != nil {
			return nil, err
		}
		agentIDs[i] = id
	}
	for i, nd := range nodes[1+deg:] {
		parent := agentIDs[i%deg]
		if _, err := h.AddServer(parent, nd.Name, nd.Power, nd.LinkBandwidth); err != nil {
			return nil, err
		}
	}
	return core.Finalize(b.Name(), req, h)
}

// OptimalDAry implements the homogeneous-cluster algorithm of reference
// [10] (Chouhan, Dail, Caron, Vivien, IJHPCA 2006): on a homogeneous
// platform an optimal deployment is a complete spanning d-ary tree; the
// algorithm searches over the degree d and the number of agent levels,
// evaluates each candidate with the throughput model, and returns the best
// (fewest nodes on ties). On heterogeneous platforms it still runs —
// treating the pool in decreasing-power order with agents drawn first — but
// optimality only holds for homogeneous pools.
//
// Each (degree, levels) candidate is scored in O(1) from power prefix sums
// instead of being materialised: agents of one level form contiguous runs
// of the sorted pool with a common degree, and agent throughput is monotone
// in power, so the weakest (last) agent of each run carries the level's
// scheduling minimum; the service term needs only the server count and
// power sum. Only the winning candidate is built as a hierarchy.
//
// Precondition: the [10] optimality argument — and the O(1) prefix-sum
// scoring above — assumes *uniform link bandwidths*: with per-node links
// the weakest agent of a run is no longer the one with the least power.
// On platforms with heterogeneous links the planner does not fail; it
// falls back to scoring every candidate at the pool's minimum link
// bandwidth (a conservative uniform projection) and the returned plan is
// re-evaluated honestly with the true per-node links by core.Finalize.
// Treat its result on such platforms as a baseline, never an optimum.
type OptimalDAry struct{}

// Name implements core.Planner.
func (*OptimalDAry) Name() string { return "optimal-dary" }

// Plan implements core.Planner.
//
//adeptvet:allow ctxflow context-free convenience wrapper; callers that want cancellation use PlanContext
func (o *OptimalDAry) Plan(req core.Request) (*core.Plan, error) {
	return o.PlanContext(context.Background(), req)
}

// PlanContext implements core.Planner; the context is polled once per
// candidate degree, bounding cancellation latency to one (degree, levels)
// sweep.
func (o *OptimalDAry) PlanContext(ctx context.Context, req core.Request) (*core.Plan, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	c, bw, wapp := req.Costs, req.Platform.Bandwidth, req.Wapp
	if !req.Platform.HasUniformLinks() {
		// Conservative fallback: score candidates as if every link ran at
		// the pool's slowest bandwidth (see the type comment).
		bw, _ = req.Platform.LinkRange()
	}
	nodes := req.Platform.SortByPowerDesc()
	n := len(nodes)

	prefix := make([]float64, n+1)
	for i, nd := range nodes {
		prefix[i+1] = prefix[i] + nd.Power
	}
	// numTable[k] is the Eq. 10 numerator 1 + k·Wpre/Wapp accumulated
	// sequentially, matching model.ServerCompTime's summation.
	numTable := make([]float64, n+1)
	numTable[0] = 1
	for k := 1; k <= n; k++ {
		numTable[k] = numTable[k-1] + c.ServerWpre/wapp
	}
	srxstx := model.ServerReceiveTime(c, bw) + model.ServerSendTime(c, bw)

	// evalCand scores one candidate without building it: agents are
	// nodes[0:agents) (upper levels all degree d, bottom level round-robin
	// ceil/floor), servers are nodes[agents:agents+servers).
	evalCand := func(d, levels, agents, bottom, servers int) float64 {
		sched := math.Inf(1)
		if upper := agents - bottom; upper > 0 {
			if t := model.AgentThroughput(c, bw, nodes[upper-1].Power, d); t < sched {
				sched = t
			}
		}
		ceilCnt := servers % bottom
		floorDeg := servers / bottom
		if ceilCnt > 0 {
			if t := model.AgentThroughput(c, bw, nodes[agents-bottom+ceilCnt-1].Power, floorDeg+1); t < sched {
				sched = t
			}
		}
		if floorDeg > 0 {
			if t := model.AgentThroughput(c, bw, nodes[agents-1].Power, floorDeg); t < sched {
				sched = t
			}
		}
		// Weakest server carries the prediction minimum (monotone in power).
		if t := model.ServerPredictionThroughput(c, bw, nodes[agents+servers-1].Power); t < sched {
			sched = t
		}
		den := (prefix[agents+servers] - prefix[agents]) / wapp
		service := 1 / (srxstx + numTable[servers]/den)
		return math.Min(sched, service)
	}

	bestCapped := math.Inf(-1)
	bestUsed := 0
	bestD, bestLevels, bestServers := 0, 0, 0
	for d := 1; d <= n-1; d++ {
		if err := core.CheckContext(ctx, o.Name()); err != nil {
			return nil, err
		}
		for levels := 1; ; levels++ {
			agents := agentCount(d, levels)
			if agents >= n {
				break
			}
			// Bottom-level agents can hold at most bottom*d servers.
			bottom := bottomAgents(d, levels)
			maxServers := bottom * d
			servers := n - agents
			if servers > maxServers {
				servers = maxServers
			}
			if servers < 1 {
				break
			}
			// Non-root agents need at least two children for the final
			// shape invariant; with servers spread round-robin over bottom
			// agents this requires servers >= 2*bottom (levels > 1) —
			// except the degenerate chain d == 1, which can never satisfy
			// it beyond a single level.
			if levels > 1 && (d < 2 || servers < 2*bottom) {
				continue
			}
			capped := req.Demand.Cap(evalCand(d, levels, agents, bottom, servers))
			used := agents + servers
			if capped > bestCapped || (capped == bestCapped && used < bestUsed) {
				bestCapped, bestUsed = capped, used
				bestD, bestLevels, bestServers = d, levels, servers
			}
		}
	}
	if bestD == 0 {
		return nil, fmt.Errorf("baseline: optimal-dary found no feasible deployment for %d nodes", n)
	}
	h, err := buildDAry(req.Platform.Name, nodes, bestD, bestLevels, bestServers)
	if err != nil {
		return nil, fmt.Errorf("baseline: optimal-dary rebuild: %w", err)
	}
	return core.Finalize(o.Name(), req, h)
}

// agentCount returns 1 + d + d² + … for `levels` agent levels.
func agentCount(d, levels int) int {
	if d == 1 {
		return levels
	}
	total, pow := 0, 1
	for l := 0; l < levels; l++ {
		total += pow
		pow *= d
	}
	return total
}

// bottomAgents returns the number of agents on the deepest agent level.
func bottomAgents(d, levels int) int {
	if d == 1 {
		return 1
	}
	pow := 1
	for l := 1; l < levels; l++ {
		pow *= d
	}
	return pow
}

// buildDAry constructs the complete d-ary agent tree with `levels` agent
// levels and `servers` servers spread round-robin under the bottom agents.
func buildDAry(name string, nodes []platform.Node, d, levels, servers int) (*hierarchy.Hierarchy, error) {
	h := hierarchy.New(fmt.Sprintf("%s-dary-d%d-l%d", name, d, levels))
	idx := 0
	take := func() platform.Node { n := nodes[idx]; idx++; return n }

	rootNode := take()
	rootID, err := h.AddRoot(rootNode.Name, rootNode.Power, rootNode.LinkBandwidth)
	if err != nil {
		return nil, err
	}
	level := []int{rootID}
	for l := 1; l < levels; l++ {
		var nextLevel []int
		for _, parent := range level {
			for k := 0; k < d; k++ {
				nd := take()
				id, err := h.AddAgent(parent, nd.Name, nd.Power, nd.LinkBandwidth)
				if err != nil {
					return nil, err
				}
				nextLevel = append(nextLevel, id)
			}
		}
		level = nextLevel
	}
	for s := 0; s < servers; s++ {
		parent := level[s%len(level)]
		nd := take()
		if _, err := h.AddServer(parent, nd.Name, nd.Power, nd.LinkBandwidth); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// Random builds a valid random deployment; property tests use it as a
// stress generator and as a sanity floor the real planners must beat.
type Random struct {
	Seed int64
	// MaxNodes optionally bounds the deployment size (0 = use whole pool).
	MaxNodes int
}

// Name implements core.Planner.
func (*Random) Name() string { return "random" }

// PlanContext implements core.Planner; randomized construction is linear,
// so the context is checked once up front.
func (r *Random) PlanContext(ctx context.Context, req core.Request) (*core.Plan, error) {
	if err := core.CheckContext(ctx, r.Name()); err != nil {
		return nil, err
	}
	return r.Plan(req)
}

// Plan implements core.Planner.
func (r *Random) Plan(req core.Request) (*core.Plan, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(r.Seed))
	nodes := append([]platform.Node(nil), req.Platform.Nodes...)
	rng.Shuffle(len(nodes), func(i, j int) { nodes[i], nodes[j] = nodes[j], nodes[i] })
	n := len(nodes)
	if r.MaxNodes > 1 && r.MaxNodes < n {
		n = r.MaxNodes
	}
	h := hierarchy.New(req.Platform.Name + "-random")
	rootID, err := h.AddRoot(nodes[0].Name, nodes[0].Power, nodes[0].LinkBandwidth)
	if err != nil {
		return nil, err
	}
	agents := []int{rootID}
	idx := 1
	for idx < n {
		parent := agents[rng.Intn(len(agents))]
		// Promote to a new agent level occasionally, but only when enough
		// nodes remain to give the new agent two server children.
		if n-idx >= 3 && rng.Float64() < 0.2 {
			nd := nodes[idx]
			idx++
			id, err := h.AddAgent(parent, nd.Name, nd.Power, nd.LinkBandwidth)
			if err != nil {
				return nil, err
			}
			for k := 0; k < 2 && idx < n; k++ {
				if _, err := h.AddServer(id, nodes[idx].Name, nodes[idx].Power, nodes[idx].LinkBandwidth); err != nil {
					return nil, err
				}
				idx++
			}
			agents = append(agents, id)
			continue
		}
		if _, err := h.AddServer(parent, nodes[idx].Name, nodes[idx].Power, nodes[idx].LinkBandwidth); err != nil {
			return nil, err
		}
		idx++
	}
	return core.Finalize(r.Name(), req, h)
}
