package baseline_test

import (
	"testing"
	"testing/quick"

	"adept/internal/baseline"
	"adept/internal/core"
	"adept/internal/hierarchy"
	"adept/internal/model"
	"adept/internal/platform"
	"adept/internal/workload"
)

func request(n int, power float64, dgemmN int) core.Request {
	return core.Request{
		Platform: platform.Homogeneous("b", n, power, 100),
		Costs:    model.DIETDefaults(),
		Wapp:     workload.DGEMM{N: dgemmN}.MFlop(),
	}
}

func heteroRequest(n, dgemmN int, seed int64) core.Request {
	p, err := platform.Generate(platform.GenSpec{
		Name: "bh", N: n, Bandwidth: 100, MinPower: 100, MaxPower: 800, Seed: seed,
	})
	if err != nil {
		panic(err)
	}
	return core.Request{Platform: p, Costs: model.DIETDefaults(), Wapp: workload.DGEMM{N: dgemmN}.MFlop()}
}

func TestStarUsesWholePoolWithStrongestRoot(t *testing.T) {
	req := heteroRequest(20, 200, 1)
	plan, err := (&baseline.Star{}).Plan(req)
	if err != nil {
		t.Fatal(err)
	}
	s := plan.Hierarchy.ComputeStats()
	if s.Agents != 1 || s.Servers != 19 || s.Depth != 2 {
		t.Errorf("star stats %+v", s)
	}
	root := plan.Hierarchy.MustNode(plan.Hierarchy.Root())
	for _, n := range req.Platform.Nodes {
		if n.Power > root.Power {
			t.Errorf("node %s (%g) stronger than star root (%g)", n.Name, n.Power, root.Power)
		}
	}
}

func TestStarMaxServers(t *testing.T) {
	req := request(20, 400, 200)
	plan, err := (&baseline.Star{MaxServers: 5}).Plan(req)
	if err != nil {
		t.Fatal(err)
	}
	if s := plan.Hierarchy.ComputeStats(); s.Servers != 5 {
		t.Errorf("%d servers, want 5", s.Servers)
	}
}

func TestBalancedTwoLevels(t *testing.T) {
	req := request(200, 400, 310)
	plan, err := (&baseline.Balanced{Degree: 14}).Plan(req)
	if err != nil {
		t.Fatal(err)
	}
	s := plan.Hierarchy.ComputeStats()
	if s.Agents != 15 { // 1 root + 14 mid-level, as in the paper
		t.Errorf("%d agents, want 15", s.Agents)
	}
	if s.Servers != 185 {
		t.Errorf("%d servers, want 185", s.Servers)
	}
	if s.Depth != 3 {
		t.Errorf("depth %d, want 3", s.Depth)
	}
	if err := plan.Hierarchy.Validate(hierarchy.Final); err != nil {
		t.Errorf("balanced plan invalid: %v", err)
	}
}

func TestBalancedDegeneratesToStarOnTinyPools(t *testing.T) {
	req := request(3, 400, 200)
	plan, err := (&baseline.Balanced{Degree: 14}).Plan(req)
	if err != nil {
		t.Fatal(err)
	}
	if s := plan.Hierarchy.ComputeStats(); s.Agents != 1 {
		t.Errorf("tiny pool should degenerate to a star, got %+v", s)
	}
}

func TestBalancedDefaultDegree(t *testing.T) {
	req := request(100, 400, 310)
	plan, err := (&baseline.Balanced{}).Plan(req)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Hierarchy.Validate(hierarchy.Final); err != nil {
		t.Errorf("default-degree balanced invalid: %v", err)
	}
}

func TestOptimalDAryBeatsOrMatchesStarAndBalanced(t *testing.T) {
	for _, dgemmN := range []int{10, 100, 310, 1000} {
		req := request(30, 400, dgemmN)
		dary, err := (&baseline.OptimalDAry{}).Plan(req)
		if err != nil {
			t.Fatalf("dgemm %d: %v", dgemmN, err)
		}
		star, err := (&baseline.Star{}).Plan(req)
		if err != nil {
			t.Fatal(err)
		}
		bal, err := (&baseline.Balanced{}).Plan(req)
		if err != nil {
			t.Fatal(err)
		}
		if dary.Capped < star.Capped || dary.Capped < bal.Capped {
			t.Errorf("dgemm %d: dary %.2f < star %.2f or balanced %.2f",
				dgemmN, dary.Capped, star.Capped, bal.Capped)
		}
	}
}

func TestOptimalDAryAgentLimitedPicksOneServer(t *testing.T) {
	req := request(21, 400, 10)
	plan, err := (&baseline.OptimalDAry{}).Plan(req)
	if err != nil {
		t.Fatal(err)
	}
	if s := plan.Hierarchy.ComputeStats(); s.Servers != 1 {
		t.Errorf("agent-limited optimum should be 1 server, got %+v", s)
	}
}

func TestExhaustiveRespectsSizeLimit(t *testing.T) {
	req := request(baseline.MaxExhaustiveNodes+1, 400, 100)
	if _, err := (&baseline.Exhaustive{}).Plan(req); err == nil {
		t.Error("oversized pool accepted")
	}
}

func TestExhaustiveBeatsEveryPlannerOnSmallPools(t *testing.T) {
	req := heteroRequest(6, 150, 3)
	opt, err := (&baseline.Exhaustive{}).Plan(req)
	if err != nil {
		t.Fatal(err)
	}
	others := []core.Planner{
		&baseline.Star{},
		&baseline.Balanced{},
		&baseline.OptimalDAry{},
		&baseline.Random{Seed: 1},
		core.NewHeuristic(),
	}
	for _, pl := range others {
		plan, err := pl.Plan(req)
		if err != nil {
			t.Fatalf("%s: %v", pl.Name(), err)
		}
		if plan.Capped > opt.Capped+1e-9 {
			t.Errorf("%s (%.3f) beats the exhaustive optimum (%.3f)", pl.Name(), plan.Capped, opt.Capped)
		}
	}
}

func TestRandomPlansAreValid(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		req := heteroRequest(25, 310, seed)
		plan, err := (&baseline.Random{Seed: seed}).Plan(req)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := plan.Hierarchy.Validate(hierarchy.Final); err != nil {
			t.Errorf("seed %d: invalid plan: %v\n%s", seed, err, plan.Hierarchy)
		}
		if err := plan.Hierarchy.CheckAgainstPlatform(req.Platform); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

// Property: every baseline planner produces a Final-valid deployment that
// stays within the platform pool, across random heterogeneous platforms.
func TestPropertyPlannersProduceValidPlans(t *testing.T) {
	planners := []core.Planner{
		&baseline.Star{},
		&baseline.Balanced{},
		&baseline.OptimalDAry{},
		&baseline.Random{Seed: 5},
	}
	f := func(seed int64, sizeSeed uint8, dgemmSeed uint8) bool {
		n := 3 + int(sizeSeed%40)
		dgemmN := 10 + int(dgemmSeed)*4
		req := heteroRequest(n, dgemmN, seed)
		for _, pl := range planners {
			plan, err := pl.Plan(req)
			if err != nil {
				return false
			}
			if plan.Hierarchy.Validate(hierarchy.Final) != nil {
				return false
			}
			if plan.Hierarchy.CheckAgainstPlatform(req.Platform) != nil {
				return false
			}
			if plan.Capped <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
