#!/usr/bin/env bash
# bench.sh — the planner bench regression harness.
#
# Runs the BenchmarkHeuristicPlan{100,1k,5k} scaling benchmarks (plus their
# Naive twins planning through the retained full-recompute evaluator), the
# BenchmarkHeuristicPlanClustered5k heterogeneous-links twin, the
# BenchmarkHeuristicPlan{100k,1M} class-collapsed fleet-scale benchmarks, and
# the BenchmarkServicePlanThroughput serving-layer benchmarks (hot/mixed
# key workloads through the adeptd HTTP handler), and the
# BenchmarkServicePlanTrace off/on pair (cached-hit request without and
# with a plan trace — the off case is the no-trace-overhead guard for the
# observability instrumentation), and BenchmarkObsStoreSample (one
# time-series sampling tick over the daemon's SLO source mix — the
# per-second background cost of the SLO engine), writes
# BENCH_plan.json, and gates:
#
#   1. the 5k incremental-vs-naive speedup must be >= 10x, and the
#      heterogeneous (cluster-grid) 5k plan must stay within 2x ns/op of
#      the homogeneous 5k plan (within-run ratios: machine-independent,
#      enforced everywhere);
#   2. a million-node class-collapsed plan must stay under one second
#      (absolute ceiling — the headline latency contract of the
#      equivalence-class planner, set at ~2x its measured cost);
#   3. when a baseline file exists (BENCH_BASELINE, default
#      BENCH_plan_baseline.json), ns/op may not regress more than
#      BENCH_NS_TOL (default 20%) and allocs/op more than
#      BENCH_ALLOCS_TOL (default 20%) against it (same-machine
#      comparison; CI keeps a best-ever rolling baseline in the actions
#      cache and widens the ns tolerance for runner variance).
#
# Knobs: BENCHTIME (default 3x), COUNT (default 1), BENCH_BASELINE,
# BENCH_NS_TOL, BENCH_ALLOCS_TOL.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-3x}"
COUNT="${COUNT:-1}"
BASELINE="${BENCH_BASELINE:-BENCH_plan_baseline.json}"
NS_TOL="${BENCH_NS_TOL:-0.20}"
ALLOCS_TOL="${BENCH_ALLOCS_TOL:-0.20}"

go test -run '^$' \
  -bench 'BenchmarkHeuristicPlan(100|1k|5k|100k|1M)$|BenchmarkHeuristicPlanNaive(100|1k|5k)$|BenchmarkHeuristicPlanClustered5k$|BenchmarkServicePlanThroughput$|BenchmarkServicePlanTrace$|BenchmarkObsStoreSample$' \
  -benchmem -benchtime "$BENCHTIME" -count "$COUNT" . | tee bench_plan.txt

go run ./cmd/benchguard -parse bench_plan.txt -out BENCH_plan.json

go run ./cmd/benchguard -new BENCH_plan.json \
  -require-speedup 10 \
  -speedup-pair BenchmarkHeuristicPlanNaive5k:BenchmarkHeuristicPlan5k

go run ./cmd/benchguard -new BENCH_plan.json \
  -require-max-ratio 2 \
  -max-ratio-pair BenchmarkHeuristicPlanClustered5k:BenchmarkHeuristicPlan5k

go run ./cmd/benchguard -new BENCH_plan.json \
  -require-max-ns BenchmarkHeuristicPlan1M:1000000000

if [ -f "$BASELINE" ]; then
  go run ./cmd/benchguard -base "$BASELINE" -new BENCH_plan.json -tol "$NS_TOL" -allocs-tol "$ALLOCS_TOL"
else
  echo "bench.sh: no baseline at $BASELINE — skipping regression compare (seed one with: cp BENCH_plan.json $BASELINE)"
fi
