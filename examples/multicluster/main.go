// Command multicluster demonstrates heterogeneous-link planning on a
// 3-cluster grid: a local cluster of modest nodes on a fast LAN plus two
// remote clusters of powerful nodes behind a slow WAN uplink.
//
// It plans the same pool twice — once with the true per-node link
// bandwidths, once through the paper's uniform-bandwidth model (what a
// link-blind administrator would feed the planner) — and then measures
// both deployments on the discrete-event simulator over the *real*
// clustered network. The uniform model's plan drafts the powerful remote
// nodes as agents and collapses on the WAN; the link-aware plan keeps the
// scheduling hierarchy on the LAN and ships only the tiny server messages
// across.
//
//	go run ./examples/multicluster
package main

import (
	"fmt"

	"adept/internal/core"
	"adept/internal/model"
	"adept/internal/platform"
	"adept/internal/sim"
	"adept/internal/workload"
)

func main() {
	// The grid: cluster 0 is local (modest power, fast 100 Mb/s LAN);
	// clusters 1 and 2 are remote compute beasts behind a 2 Mb/s uplink —
	// the shape that makes link-blind planning catastrophic, because raw
	// power ranks the remote nodes first for agent duty.
	grid, err := platform.Generate(platform.GenSpec{
		Name: "grid", N: 15, Bandwidth: 100,
		MinPower: 300, MaxPower: 500, Seed: 42,
		Clusters: 3, IntraBandwidth: 100, InterBandwidth: 2,
	})
	if err != nil {
		panic(err)
	}
	for i := range grid.Nodes {
		if i%3 != 0 { // clusters 1 and 2: triple the horsepower
			grid.Nodes[i].Power *= 3
		}
	}
	fmt.Println(grid)

	costs := model.DIETDefaults()
	wapp := workload.DGEMM{N: 100}.MFlop()

	aware, err := core.NewHeuristic().Plan(core.Request{Platform: grid, Costs: costs, Wapp: wapp})
	if err != nil {
		panic(err)
	}

	// The blind view: same pool, links erased — the uniform model B.
	blindPool := grid.Clone()
	for i := range blindPool.Nodes {
		blindPool.Nodes[i].LinkBandwidth = 0
	}
	blind, err := core.NewHeuristic().Plan(core.Request{Platform: blindPool, Costs: costs, Wapp: wapp})
	if err != nil {
		panic(err)
	}
	// The blind plan still runs on the real network: restore true links
	// before simulating it.
	links := map[string]float64{}
	for _, n := range grid.Nodes {
		links[n.Name] = n.LinkBandwidth
	}
	blindReal, err := blind.Hierarchy.WithLinkBandwidths(links)
	if err != nil {
		panic(err)
	}

	cfg := sim.Config{Clients: 40, Warmup: 2, Window: 10}
	awareRes, err := sim.Measure(aware.Hierarchy, costs, grid.Bandwidth, wapp, cfg)
	if err != nil {
		panic(err)
	}
	blindRes, err := sim.Measure(blindReal, costs, grid.Bandwidth, wapp, cfg)
	if err != nil {
		panic(err)
	}

	fmt.Printf("\nlink-aware plan   : predicted ρ=%7.1f req/s, simulated %7.1f req/s\n", aware.Eval.Rho, awareRes.Throughput)
	fmt.Printf("uniform-model plan: predicted ρ=%7.1f req/s, simulated %7.1f req/s (prediction made with links erased)\n", blind.Eval.Rho, blindRes.Throughput)
	fmt.Printf("\nlink-aware deployment:\n%s", aware.Hierarchy)
	fmt.Printf("\nuniform-model deployment on the real network:\n%s", blindReal)
}
