// Live deployment: plan a hierarchy, serialise it to the GoDIET-style XML,
// launch it on the concurrent goroutine middleware over loopback TCP, and
// measure real wall-clock throughput with closed-loop clients — the whole
// paper pipeline (plan → write_xml → deploy → load) end to end, with
// servers executing real DGEMM kernels.
//
// Run with: go run ./examples/livedeploy
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	"adept/internal/core"
	"adept/internal/deploy"
	"adept/internal/model"
	"adept/internal/platform"
	"adept/internal/runtime"
	"adept/internal/workload"
)

func main() {
	plat := platform.Homogeneous("live", 6, 400, 100)
	app := workload.DGEMM{N: 96}
	req := core.Request{Platform: plat, Costs: model.DIETDefaults(), Wapp: app.MFlop()}

	plan, err := core.NewHeuristic().Plan(req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(plan.Summary())

	// write_xml: the planner's artifact...
	xml, err := plan.XML()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndeployment XML (%d bytes):\n%s\n", len(xml), xml)

	// ...consumed by the deployment tool, over real TCP sockets.
	dep, err := deploy.LaunchXML(strings.NewReader(xml), deploy.Config{
		Transport: deploy.TransportTCP,
		Metered:   true,
		Options: runtime.Options{
			Costs:     model.DIETDefaults(),
			Bandwidth: plat.Bandwidth,
			Wapp:      app.MFlop(),
			DgemmN:    app.N, // servers run a real 96x96 matrix multiply
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer dep.Stop()

	fmt.Println("launched on loopback TCP; driving 4 clients for 2s of real DGEMM work...")
	stats, err := dep.System.RunClients(context.Background(), 4, 2*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("completed %d requests (%.1f req/s real), %d failed, %d timeouts\n",
		stats.Completed, float64(stats.Completed)/stats.Elapsed.Seconds(), stats.Failed, stats.Timeouts)

	fmt.Println("per-server completions:")
	for name, count := range dep.System.ServedCounts() {
		fmt.Printf("  %-12s %d\n", name, count)
	}
	fmt.Printf("wire traffic: %d messages, %d bytes\n",
		dep.Meter.TotalMessages(), dep.Meter.TotalBytes())
}
