// Quickstart: plan a deployment for a small heterogeneous platform, print
// the predicted performance, and emit the GoDIET-style XML.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"adept/internal/core"
	"adept/internal/model"
	"adept/internal/platform"
	"adept/internal/workload"
)

func main() {
	// A pool of ten heterogeneous nodes with homogeneous 100 Mb/s links —
	// powers as a Linpack mini-benchmark would report them (MFlop/s).
	plat := &platform.Platform{
		Name:      "quickstart",
		Bandwidth: 100,
		Nodes: []platform.Node{
			{Name: "node-0", Power: 760}, {Name: "node-1", Power: 720},
			{Name: "node-2", Power: 540}, {Name: "node-3", Power: 510},
			{Name: "node-4", Power: 400}, {Name: "node-5", Power: 390},
			{Name: "node-6", Power: 250}, {Name: "node-7", Power: 220},
			{Name: "node-8", Power: 160}, {Name: "node-9", Power: 120},
		},
	}

	// The application: DGEMM on 310x310 matrices, as in the paper's §5.3.
	app := workload.DGEMM{N: 310}

	req := core.Request{
		Platform: plat,
		Costs:    model.DIETDefaults(), // Table 3 parameters
		Wapp:     app.MFlop(),
	}

	plan, err := core.NewHeuristic().Plan(req)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("planning %s on %s\n\n", app, plat)
	fmt.Println(plan.Summary())
	fmt.Println()
	fmt.Print(plan.Hierarchy)
	fmt.Println()

	// The write_xml hand-off: what a deployment tool would consume.
	if err := plan.Hierarchy.WriteXML(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
