// Heterogeneous-cluster comparison (the paper's §5.3 / Fig. 6 scenario):
// heterogenise a 120-node cluster with background load, plan deployments
// with the automatic heuristic and the two intuitive alternatives (star,
// balanced), then measure all three in the discrete-event simulator under
// increasing client load.
//
// Run with: go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"

	"adept/internal/baseline"
	"adept/internal/core"
	"adept/internal/model"
	"adept/internal/platform"
	"adept/internal/sim"
	"adept/internal/workload"
)

func main() {
	// Start from a homogeneous 120-node cluster and launch background
	// matrix-multiplication jobs on 60% of the nodes, leaving them 25%,
	// 50% or 75% of their power — exactly the paper's heterogenisation.
	base := platform.Homogeneous("cluster", 120, 400, 100)
	plat, err := platform.Heterogenize(base, platform.BackgroundLoad{
		Fraction:    0.6,
		LoadFactors: []float64{0.25, 0.5, 0.75},
		Seed:        42,
	})
	if err != nil {
		log.Fatal(err)
	}

	app := workload.DGEMM{N: 310}
	req := core.Request{Platform: plat, Costs: model.DIETDefaults(), Wapp: app.MFlop()}

	planners := []core.Planner{
		&baseline.Star{},
		&baseline.Balanced{Degree: 10},
		core.NewHeuristic(),
	}

	fmt.Printf("%s, %s\n\n", plat, app)
	levels := []int{1, 10, 50, 150, 300}
	fmt.Printf("%-10s", "clients")
	plans := make([]*core.Plan, len(planners))
	for i, pl := range planners {
		plan, err := pl.Plan(req)
		if err != nil {
			log.Fatal(err)
		}
		plans[i] = plan
		fmt.Printf("  %14s", pl.Name())
	}
	fmt.Println()

	rows := make([][]float64, len(levels))
	for li, k := range levels {
		rows[li] = make([]float64, len(plans))
		fmt.Printf("%-10d", k)
		for pi, plan := range plans {
			res, err := sim.Measure(plan.Hierarchy, req.Costs, plat.Bandwidth, req.Wapp,
				sim.Config{Clients: k, Warmup: 3 + 0.01*float64(k), Window: 6})
			if err != nil {
				log.Fatal(err)
			}
			rows[li][pi] = res.Throughput
			fmt.Printf("  %10.1f r/s", res.Throughput)
		}
		fmt.Println()
	}

	fmt.Println()
	for _, plan := range plans {
		fmt.Println(plan.Summary())
	}
	fmt.Println("\nThe automatically planned hierarchy sustains the highest load,")
	fmt.Println("reproducing the paper's Fig. 6 conclusion.")
}
