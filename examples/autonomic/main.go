// Autonomic reconfiguration walkthrough: plan a deployment, run it in the
// deterministic simulator under closed-loop load, inject a 2x background
// load on the most powerful server mid-run (the §5.3 heterogenisation
// happening live), and watch the MAPE-K loop learn the drift, replan, and
// patch the running hierarchy — no redeploy, just a handful of ops.
//
// Run with: go run ./examples/autonomic
package main

import (
	"context"
	"fmt"
	"log"

	"adept/internal/autonomic"
	"adept/internal/core"
	"adept/internal/model"
	"adept/internal/platform"
	"adept/internal/sim"
)

func main() {
	const (
		bandwidth = 100.0 // Mbit/s
		wapp      = 10.0  // MFlop per request
		clients   = 8
		window    = 10.0 // simulated seconds per monitoring window
		driftAt   = 40.0 // when the background load lands
	)
	plat := &platform.Platform{
		Name:      "autonomic-demo",
		Bandwidth: bandwidth,
		Nodes: []platform.Node{
			{Name: "n0", Power: 400},
			{Name: "s1", Power: 200},
			{Name: "s2", Power: 150},
			{Name: "s3", Power: 150},
			{Name: "s4", Power: 100},
		},
	}

	// Plan the initial deployment for the nominal platform.
	plan, err := core.NewHeuristic().Plan(core.Request{
		Platform: plat, Costs: model.DIETDefaults(), Wapp: wapp,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(plan.Summary())
	fmt.Printf("\ninitial hierarchy:\n%s\n", plan.Hierarchy)

	// Run it in the simulator with a scheduled drift: at t=40s, a
	// background job steals half of s1 (the most powerful server).
	managed, err := sim.NewManaged(plan.Hierarchy, model.DIETDefaults(), bandwidth, wapp, clients,
		[]sim.LoadPhase{{At: driftAt, Factors: map[string]float64{"s1": 2}}})
	if err != nil {
		log.Fatal(err)
	}

	ctrl, err := autonomic.New(autonomic.Config{
		Platform:     plat,
		Costs:        model.DIETDefaults(),
		Wapp:         wapp,
		CrashWindows: -1, // drift demo: a starved server is not a crash
		MaxCycles:    20,
	}, &autonomic.SimTarget{Managed: managed, Window: window}, plan.Hierarchy)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("running the MAPE-K loop: %g s windows, drift lands at t=%g s\n\n", window, driftAt)
	for cycle := 1; cycle <= 20; cycle++ {
		if err := ctrl.Step(context.Background()); err != nil {
			log.Fatal(err)
		}
		st := ctrl.Status()
		marker := ""
		if len(st.Adaptations) > 0 && st.Adaptations[len(st.Adaptations)-1].Cycle == cycle {
			marker = "  <- adaptation"
		}
		fmt.Printf("t=%4.0fs  throughput %6.2f req/s%s\n", managed.Now(), st.Throughput, marker)
	}

	st := ctrl.Status()
	fmt.Printf("\nadaptation history (%d patch ops total, %d full redeploys):\n",
		st.PatchOpsApplied, st.FullRedeploys)
	for _, ev := range st.Adaptations {
		fmt.Printf("  cycle %d:\n", ev.Cycle)
		for _, reason := range ev.Reasons {
			fmt.Printf("    detected: %s\n", reason)
		}
		for _, op := range ev.Ops {
			fmt.Printf("    applied:  %s\n", op)
		}
		fmt.Printf("    predicted rho %.2f -> %.2f req/s\n", ev.PredictedRhoBefore, ev.PredictedRhoAfter)
	}
	fmt.Println("\nlearned effective powers (MFlop/s):")
	for name, p := range st.EffectivePowers {
		fmt.Printf("  %-4s %.0f\n", name, p)
	}
	fmt.Printf("\nfinal hierarchy (rated powers include the patch):\n%s", st.Hierarchy)
}
