// Planning-as-a-service walkthrough: start the adeptd service in-process,
// register a platform, plan against it twice (observing the cache hit),
// send a thundering herd of identical requests (observing that they
// coalesce onto one planner run), fan a batch across every planner,
// launch a live deployment through the daemon, and read back the metrics
// — everything cmd/adeptd serves, driven through its HTTP API exactly as
// a remote client would.
//
// Run with: go run ./examples/service
//
// For load-testing a real daemon over the network — target request
// rates, hot/cold key mixes, latency histograms, and 429 backpressure —
// use the closed-loop generator instead:
//
//	go run ./cmd/adeptd -addr :8080 &
//	go run ./cmd/adeptload -url http://localhost:8080 -duration 10s -rps 200
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"sync"

	"adept/internal/platform"
	"adept/internal/service"
)

func main() {
	srv, err := service.New(service.Config{CacheSize: 64, Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	fmt.Printf("adeptd serving at %s\n\n", ts.URL)

	// 1. Register a 50-node heterogeneous platform under a name.
	plat, err := platform.Generate(platform.GenSpec{
		Name: "orsay", N: 50, Bandwidth: 100, MinPower: 100, MaxPower: 800, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	body, _ := plat.MarshalIndent()
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/platforms/orsay", bytes.NewReader(body))
	mustOK(http.DefaultClient.Do(req))
	fmt.Println("registered platform \"orsay\" (50 nodes)")

	// 2. Plan by name, twice: the second call is a cache hit.
	for i := 1; i <= 2; i++ {
		var pr service.PlanResponse
		postJSON(ts.URL+"/v1/plan", service.PlanRequest{
			PlatformName: "orsay",
			DgemmN:       310,
		}, &pr)
		fmt.Printf("plan %d: %s ρ=%.2f req/s bottleneck=%s nodes=%d cached=%v (%.2f ms)\n",
			i, pr.Planner, pr.Rho, pr.Bottleneck, pr.NodesUsed, pr.Cached, pr.ElapsedMS)
	}

	// 3. Thundering herd: concurrent identical requests on a cold key
	// coalesce onto a single planning run — the joiners answer with
	// "coalesced": true and the daemon burns one pool worker, not eight.
	herd, err := platform.Generate(platform.GenSpec{
		Name: "herd", N: 300, Bandwidth: 100, MinPower: 100, MaxPower: 800, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	const herdSize = 8
	herdResults := make([]service.PlanResponse, herdSize)
	var wg sync.WaitGroup
	for i := 0; i < herdSize; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			postJSON(ts.URL+"/v1/plan", service.PlanRequest{Platform: herd, DgemmN: 310}, &herdResults[i])
		}(i)
	}
	wg.Wait()
	coalesced, cached := 0, 0
	for _, pr := range herdResults {
		if pr.Coalesced {
			coalesced++
		}
		if pr.Cached {
			cached++
		}
	}
	fmt.Printf("\nthundering herd: %d identical requests -> %d coalesced, %d cached, %d planner run(s)\n",
		herdSize, coalesced, cached, herdSize-coalesced-cached)

	// 4. Batch: the same platform across every planner in one call.
	var batch service.BatchResponse
	var reqs []service.PlanRequest
	planners := []string{"heuristic", "heuristic+swap", "star", "balanced", "dary"}
	for _, p := range planners {
		reqs = append(reqs, service.PlanRequest{PlatformName: "orsay", Planner: p, DgemmN: 310})
	}
	postJSON(ts.URL+"/v1/plan/batch", service.BatchRequest{Requests: reqs}, &batch)
	fmt.Println("\nbatch across planners:")
	for i, item := range batch.Items {
		if item.Error != "" {
			fmt.Printf("  %-15s error: %s\n", planners[i], item.Error)
			continue
		}
		fmt.Printf("  %-15s ρ=%8.2f req/s  nodes=%3d  depth=%d\n",
			item.Plan.Planner, item.Plan.Rho, item.Plan.NodesUsed, item.Plan.Depth)
	}

	// 5. Live deployment: the daemon launches the planned hierarchy on the
	// in-process middleware runtime and drives closed-loop clients.
	var dep service.DeployResponse
	postJSON(ts.URL+"/v1/deploy", service.DeployRequest{
		PlanRequest: service.PlanRequest{
			Platform: platform.Homogeneous("live", 6, 400, 100),
			Wapp:     5.0,
		},
		Clients:        4,
		DurationMillis: 400,
	}, &dep)
	fmt.Printf("\nlive deploy: %d requests completed (%.1f req/s real) on %d servers\n",
		dep.Completed, dep.Throughput, len(dep.ServedCounts))

	// 6. Metrics: counters, cache hit/miss, coalescing, latency percentiles.
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		log.Fatal(err)
	}
	var rep service.Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("\nmetrics: %d requests, cache %d hit / %d miss (%d shards), %d coalesced, %d planner run(s), %d platform(s)\n",
		rep.Requests, rep.CacheHits, rep.CacheMisses, rep.CacheShards, rep.Coalesced, rep.PlansExecuted, rep.Platforms)
	for ep, em := range rep.Endpoints {
		fmt.Printf("  %-16s %3d req  p50=%.2fms  p99=%.2fms\n", ep, em.Requests, em.P50Millis, em.P99Millis)
	}
}

func postJSON(url string, in, out any) {
	data, err := json.Marshal(in)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		log.Fatalf("POST %s: status %d: %s", url, resp.StatusCode, buf.String())
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}

func mustOK(resp *http.Response, err error) {
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		log.Fatalf("status %d: %s", resp.StatusCode, buf.String())
	}
}
