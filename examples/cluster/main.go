// Clustered-adeptd walkthrough: boot three daemons in-process, join them
// into one consistent-hash ring, and drive every clustering behaviour a
// real fleet exhibits — a registration on one peer replicating to all,
// a plan request routed to its content address's ring owner, warm-key
// requests on non-owners answered from the owner's cache, conditional
// writes rejecting a stale ETag with 412, the cluster status report, and
// a peer death degrading to local planning with zero failed requests.
//
// Run with: go run ./examples/cluster
//
// The same topology over real processes:
//
//	go run ./cmd/adeptd -addr :8080 -peer-self http://localhost:8080 \
//	    -peers http://localhost:8080,http://localhost:8081,http://localhost:8082 &
//	go run ./cmd/adeptd -addr :8081 -peer-self http://localhost:8081 \
//	    -peers http://localhost:8080,http://localhost:8081,http://localhost:8082 &
//	go run ./cmd/adeptd -addr :8082 -peer-self http://localhost:8082 \
//	    -peers http://localhost:8080,http://localhost:8081,http://localhost:8082 &
//	go run ./cmd/adeptload -url http://localhost:8080,http://localhost:8081,http://localhost:8082
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	"adept/internal/cluster"
	"adept/internal/platform"
	"adept/internal/service"
)

// peer bundles one in-process cluster member.
type peer struct {
	srv  *service.Server
	node *cluster.Node
	ts   *httptest.Server
}

func main() {
	// Listeners first: their URLs are the membership list every node is
	// configured with. This mirrors cmd/adeptd, where -peers is known
	// before the ring is built.
	const size = 3
	peers := make([]*peer, size)
	urls := make([]string, size)
	for i := range peers {
		srv, err := service.New(service.Config{CacheSize: 64, Workers: 2})
		if err != nil {
			log.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		peers[i] = &peer{srv: srv, ts: ts}
		urls[i] = ts.URL
	}
	for i, p := range peers {
		node, err := cluster.New(cluster.Config{
			Self:     urls[i],
			Peers:    urls,
			Secret:   "walkthrough-secret",
			Registry: p.srv.Registry(),
			Cache:    p.srv.Cache(),
		})
		if err != nil {
			log.Fatal(err)
		}
		p.srv.EnableCluster(node)
		p.node = node
		defer node.Close()
		defer p.ts.Close()
		defer p.srv.Close()
	}
	fmt.Println("three-peer cluster up:")
	for i, u := range urls {
		fmt.Printf("  peer %d: %s\n", i, u)
	}

	// 1. Register a platform on peer 0; the versioned write fans out to
	// the other peers as HMAC-signed invalidation webhooks.
	plat, err := platform.Generate(platform.GenSpec{
		Name: "shared", N: 24, Bandwidth: 100, MinPower: 100, MaxPower: 800, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	platJSON, err := plat.MarshalIndent()
	if err != nil {
		log.Fatal(err)
	}
	etag := putPlatform(urls[0], "shared", platJSON, "")
	fmt.Printf("\nregistered %q on peer 0 (ETag %s); waiting for replication...\n", "shared", etag)
	for _, p := range peers {
		for {
			if _, ok := p.srv.Registry().Get("shared"); ok {
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	fmt.Println("all three registries resolve the name")

	// 2. Conditional writes: a stale If-Match is rejected with 412 — the
	// lost-update fix, visible over plain HTTP.
	if code := tryPut(urls[1], "shared", platJSON, etag); code != http.StatusOK {
		log.Fatalf("conditional PUT with current ETag: status %d", code)
	}
	if code := tryPut(urls[2], "shared", platJSON, etag); code != http.StatusPreconditionFailed {
		log.Fatalf("stale conditional PUT: status %d, want 412", code)
	}
	fmt.Printf("conditional PUT: current ETag accepted, stale ETag answered 412\n")

	// 3. Plan by name through each peer. The content address's ring owner
	// answers; non-owners forward one hop and surface the owner's cache.
	var key string
	for i, u := range urls {
		resp := postPlan(u, `{"platform_name":"shared","dgemm_n":310}`)
		key = resp.Key
		where := "planned locally (ring owner)"
		if resp.Peer != "" {
			where = fmt.Sprintf("answered by owner %s (cached=%v)", resp.Peer, resp.Cached)
		}
		fmt.Printf("peer %d: rho=%.3f nodes=%d  %s\n", i, resp.Rho, resp.NodesUsed, where)
	}
	owner := peers[0].node.Ring().Owner(key)
	fmt.Printf("content address %s... is owned by %s\n", key[:12], owner)

	// 4. The cluster status endpoint: membership, health, ownership.
	var status cluster.Status
	get(urls[0]+"/v1/cluster", &status)
	fmt.Printf("\ncluster status via peer 0: self=%s cached_keys=%d\n", status.Self, status.CachedKeys)
	for _, row := range status.Peers {
		fmt.Printf("  %-28s healthy=%-5v share=%.2f owned_keys=%d\n",
			row.URL, row.Healthy, row.RingShare, row.OwnedCachedKeys)
	}

	// 5. Kill the owner. Requests for its keys degrade to local planning
	// on the survivors — no client ever sees an error.
	var victim *peer
	for _, p := range peers {
		if p.ts.URL == owner {
			victim = p
		}
	}
	victim.ts.Close()
	fmt.Printf("\nkilled owner %s\n", owner)

	// The warm key still answers instantly on peers that retained the
	// owner's response (the fill-back copy is immune to the owner dying,
	// because content addresses never go stale)...
	for i, p := range peers {
		if p == victim {
			continue
		}
		resp := postPlan(p.ts.URL, `{"platform_name":"shared","dgemm_n":310}`)
		fmt.Printf("peer %d: warm key still 200 (cached=%v, served from retained copy of %s)\n",
			i, resp.Cached, resp.Peer)
	}

	// ...and fresh keys owned by the dead peer fall back to local
	// planning on whichever survivor receives them.
	var survivor *peer
	for _, p := range peers {
		if p != victim {
			survivor = p
		}
	}
	requests, before := 0, survivor.node.Report().Fallbacks
	for w := 1.0; survivor.node.Report().Fallbacks == before; w++ {
		postPlan(survivor.ts.URL, fmt.Sprintf(`{"platform_name":"shared","wapp":%g}`, w))
		requests++
	}
	fmt.Printf("\n%d fresh keys on a survivor: all 200, %d planned locally after the owner refused\n",
		requests, survivor.node.Report().Fallbacks-before)
	fmt.Println("peer failure degraded to local planning; zero failed requests")
}

// putPlatform PUTs body as name and returns the response ETag.
func putPlatform(base, name string, body []byte, ifMatch string) string {
	req, err := http.NewRequest(http.MethodPut, base+"/v1/platforms/"+name, bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	if ifMatch != "" {
		req.Header.Set("If-Match", ifMatch)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("PUT %s: status %d: %s", name, resp.StatusCode, data)
	}
	return resp.Header.Get("ETag")
}

// tryPut is putPlatform without the fatal-on-error: it returns the status
// code so callers can demonstrate 412s.
func tryPut(base, name string, body []byte, ifMatch string) int {
	req, err := http.NewRequest(http.MethodPut, base+"/v1/platforms/"+name, bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	req.Header.Set("If-Match", ifMatch)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode
}

// postPlan sends a plan request and decodes the response.
func postPlan(base, body string) service.PlanResponse {
	resp, err := http.Post(base+"/v1/plan", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("POST /v1/plan: status %d: %s", resp.StatusCode, data)
	}
	var out service.PlanResponse
	if err := json.Unmarshal(data, &out); err != nil {
		log.Fatal(err)
	}
	return out
}

// get fetches a JSON document into out.
func get(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}
