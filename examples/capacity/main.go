// Capacity planning (the paper's Table 4 scenario): sweep the DGEMM
// problem size on a fixed homogeneous cluster and watch the optimal
// deployment shape change — one server for tiny requests (agent-limited),
// deep trees in the mid-range, a full star for huge requests
// (server-limited). Also shows demand-capped planning: when a client
// demand is given, the planner uses the fewest nodes that satisfy it.
//
// Run with: go run ./examples/capacity
package main

import (
	"fmt"
	"log"

	"adept/internal/core"
	"adept/internal/model"
	"adept/internal/platform"
	"adept/internal/workload"
)

func main() {
	plat := platform.Homogeneous("cluster", 45, 400, 100)
	fmt.Printf("%s\n\n", plat)
	fmt.Printf("%-12s  %-8s  %-8s  %-8s  %-7s  %s\n",
		"workload", "ρ(req/s)", "agents", "servers", "depth", "bottleneck")

	for _, n := range []int{10, 50, 100, 200, 310, 500, 1000} {
		app := workload.DGEMM{N: n}
		req := core.Request{Platform: plat, Costs: model.DIETDefaults(), Wapp: app.MFlop()}
		plan, err := core.NewHeuristic().Plan(req)
		if err != nil {
			log.Fatal(err)
		}
		s := plan.Hierarchy.ComputeStats()
		fmt.Printf("%-12s  %-8.1f  %-8d  %-8d  %-7d  %s\n",
			app, plan.Eval.Rho, s.Agents, s.Servers, s.Depth, plan.Eval.Bottleneck)
	}

	// Demand-capped planning: a fraction of peak throughput needs far
	// fewer nodes.
	fmt.Println("\ndemand-capped planning for DGEMM 310x310:")
	app := workload.DGEMM{N: 310}
	base := core.Request{Platform: plat, Costs: model.DIETDefaults(), Wapp: app.MFlop()}
	peak, err := core.NewHeuristic().Plan(base)
	if err != nil {
		log.Fatal(err)
	}
	for _, frac := range []float64{1, 0.5, 0.25, 0.1} {
		req := base
		req.Demand = workload.Demand(frac * peak.Eval.Rho)
		if frac == 1 {
			req.Demand = workload.Unbounded
		}
		plan, err := core.NewHeuristic().Plan(req)
		if err != nil {
			log.Fatal(err)
		}
		label := "unbounded"
		if req.Demand.Bounded() {
			label = fmt.Sprintf("%.0f req/s", float64(req.Demand))
		}
		fmt.Printf("  demand %-10s -> %2d nodes, delivers %.1f req/s\n",
			label, plan.NodesUsed, plan.Capped)
	}
}
