// Command adeptsoak is the long-running churn soak harness: it plans a
// deployment, runs it on the deterministic simulator under one or more
// churn schedules (crash storms, join/leave flapping, correlated cluster
// failures, flash crowds, diurnal demand), drives the MAPE-K control
// loop and the SLO engine on simulated time, and emits a JSON timeline
// report — SLO compliance, burn-rate alert transitions, correlated
// incidents with measured MTTR, and sampled time series.
//
// Everything runs on the virtual clock, so a "ten minute" soak finishes
// in seconds and two runs with the same flags produce the same faults
// (the report's wall-clock MTTRs and timestamps still differ — they
// measure the host, not the simulation).
//
// The report self-gates for CI: -min-availability, -require-incidents
// and -require-resolved-alert turn quality regressions into a nonzero
// exit instead of a graph somebody has to look at.
//
// Usage:
//
//	adeptsoak [-duration 600] [-window 10] [-families crash-storm,flash-crowd]
//	          [-nodes 12] [-clients 6] [-seed 1] [-intensity 0.3]
//	          [-recover-after 60] [-slo-target 0.995] [-out report.json]
//	          [-min-availability 0.9] [-require-incidents 1]
//	          [-require-resolved-alert]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"adept/internal/autonomic"
	"adept/internal/core"
	"adept/internal/model"
	"adept/internal/obs"
	"adept/internal/platform"
	"adept/internal/scenario"
	"adept/internal/sim"
	"adept/internal/slo"
	"adept/internal/stats"
	"adept/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "adeptsoak:", err)
		os.Exit(1)
	}
}

// Report is the soak's JSON output.
type Report struct {
	// Config echo, so a report is self-describing.
	Families    []string `json:"families"`
	DurationS   float64  `json:"duration_s"`
	WindowS     float64  `json:"window_s"`
	Cycles      int      `json:"cycles"`
	Nodes       int      `json:"nodes"`
	Clients     int      `json:"clients"`
	Seed        int64    `json:"seed"`
	Planner     string   `json:"planner"`
	WallSeconds float64  `json:"wall_seconds"`

	// Raw platform counters; the SLO numbers below derive from exactly
	// these, so report consumers can re-check the arithmetic.
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	// Availability is completed/(completed+failed) — the measured ratio
	// the availability objective scores.
	Availability float64 `json:"availability"`
	// Latency percentiles over every completed request (virtual seconds).
	LatencyP50S float64 `json:"latency_p50_s,omitempty"`
	LatencyP99S float64 `json:"latency_p99_s,omitempty"`

	Objectives []slo.ObjectiveStatus  `json:"objectives"`
	Alerts     []slo.AlertStatus      `json:"alerts"`
	Incidents  []autonomic.Incident   `json:"incidents"`
	MTTR       autonomic.MTTRSummary  `json:"mttr"`
	Adaptation autonomic.Status       `json:"adaptation"`
	Timeline   map[string][]TimePoint `json:"timeline"`
	// JournalEvents counts MAPE-K decision events (including alert
	// transitions journalled by the SLO engine).
	JournalEvents uint64 `json:"journal_events"`
	// Schedule is the expanded churn schedule that was injected.
	Schedule []sim.LoadPhase `json:"schedule"`
}

// TimePoint is one sample of one series, on the virtual clock.
type TimePoint struct {
	VirtualS float64 `json:"t_s"`
	Value    float64 `json:"v"`
}

func run() error {
	var (
		duration     = flag.Float64("duration", 600, "soak length in virtual seconds")
		window       = flag.Float64("window", 10, "MAPE-K measurement window in virtual seconds (also the sampling tick)")
		families     = flag.String("families", "crash-storm,flash-crowd", "comma-separated churn families to overlay (crash-storm, join-leave, cluster-failure, flash-crowd, diurnal)")
		nodes        = flag.Int("nodes", 12, "platform size (nodes)")
		clients      = flag.Int("clients", 6, "base closed-loop client population")
		seed         = flag.Int64("seed", 1, "seed for platform generation and churn schedules")
		intensity    = flag.Float64("intensity", 0.3, "churn intensity (fault fraction / demand surge multiple)")
		recoverAfter = flag.Float64("recover-after", 60, "restore crashed servers after this many virtual seconds (0 = family default; storms then leave them down)")
		plannerName  = flag.String("planner", "heuristic", "initial-deployment planner")
		sloTarget    = flag.Float64("slo-target", 0.995, "availability SLO target in (0,1)")
		sloConfig    = flag.String("slo-config", "", "JSON SLO config file (overrides -slo-target; availability objectives bind to the sim counters)")
		outPath      = flag.String("out", "", "write the JSON report here (empty = stdout)")
		minAvail     = flag.Float64("min-availability", -1, "fail when measured availability is below this (negative = no gate)")
		reqIncidents = flag.Int("require-incidents", 0, "fail with fewer resolved incidents than this")
		reqResolved  = flag.Bool("require-resolved-alert", false, "fail unless at least one alert fired and resolved")
	)
	flag.Parse()
	start := time.Now()

	if *duration <= 0 || *window <= 0 || *duration < 2**window {
		return fmt.Errorf("need positive -window and -duration of at least two windows")
	}
	cycles := int(*duration / *window)

	// Plan the initial deployment, exactly as adeptd would.
	plat, err := platform.Generate(platform.GenSpec{
		Name: "soak", N: *nodes, Bandwidth: 100, MinPower: 100, MaxPower: 800, Seed: *seed,
	})
	if err != nil {
		return err
	}
	req := core.Request{
		Platform: plat,
		Costs:    model.DIETDefaults(),
		Wapp:     workload.DGEMM{N: 310}.MFlop(),
	}
	planner, err := selectPlanner(*plannerName)
	if err != nil {
		return err
	}
	plan, err := planner.Plan(req)
	if err != nil {
		return err
	}
	h := plan.Hierarchy

	// Overlay one churn schedule per requested family on the deployment's
	// servers. The whole middle of the soak churns; the first and last
	// tenth stay calm so alerts have room to resolve and MTTR to be
	// measured.
	var serverNames []string
	for _, id := range h.Servers() {
		serverNames = append(serverNames, h.MustNode(id).Name)
	}
	sort.Strings(serverNames)
	var fams []string
	var schedule []sim.LoadPhase
	for i, f := range strings.Split(*families, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		spec := scenario.ChurnSpec{
			Family:       scenario.ChurnFamily(f),
			Servers:      serverNames,
			Start:        *duration * 0.1,
			Duration:     *duration * 0.6,
			Seed:         *seed + int64(i),
			Intensity:    *intensity,
			BaseClients:  *clients,
			RecoverAfter: *recoverAfter,
		}
		phases, err := spec.Phases()
		if err != nil {
			return err
		}
		schedule = append(schedule, phases...)
		fams = append(fams, f)
	}
	if len(fams) == 0 {
		return fmt.Errorf("no churn families given")
	}
	sort.SliceStable(schedule, func(i, j int) bool { return schedule[i].At < schedule[j].At })

	managed, err := sim.NewManaged(h, req.Costs, plat.Bandwidth, req.Wapp, *clients, schedule)
	if err != nil {
		return err
	}

	// The MAPE-K loop rides the same simulation. Sag detection is off:
	// demand families legitimately halve throughput, and a soak wants
	// incidents to mean faults, not traffic.
	journal := obs.NewJournal(4096)
	ctrl, err := autonomic.New(autonomic.Config{
		Platform:     plat,
		Costs:        req.Costs,
		Wapp:         req.Wapp,
		SagTolerance: -1,
		MaxCycles:    cycles,
		Journal:      journal,
	}, &autonomic.SimTarget{Managed: managed, Window: *window}, h)
	if err != nil {
		return err
	}

	// SLO engine on the virtual clock: the availability objective binds to
	// the platform's cumulative (completed, completed+failed) counters.
	store := obs.NewStore(cycles + 2)
	sloCfg := slo.Config{Objectives: []slo.ObjectiveSpec{{
		Name:   "availability",
		Type:   slo.TypeAvailability,
		Target: *sloTarget,
		Alerts: slo.DefaultAlerts(3 * *window),
	}}}
	if *sloConfig != "" {
		data, err := os.ReadFile(*sloConfig)
		if err != nil {
			return err
		}
		if sloCfg, err = slo.ParseConfig(data); err != nil {
			return fmt.Errorf("%s: %w", *sloConfig, err)
		}
	}
	eng, err := slo.NewEngine(sloCfg, store, journal)
	if err != nil {
		return err
	}
	good := func() float64 { return float64(managed.Completed()) }
	total := func() float64 { return float64(managed.Completed() + managed.Failed()) }
	for _, spec := range sloCfg.Objectives {
		if spec.Type != slo.TypeAvailability {
			return fmt.Errorf("soak slo config: objective %q: only availability objectives bind to the simulator", spec.Name)
		}
		if err := eng.Bind(spec.Name, good, total, 0); err != nil {
			return err
		}
	}
	store.Watch("completed_total", good)
	store.Watch("failed_total", func() float64 { return float64(managed.Failed()) })
	store.Watch("active_clients", func() float64 { return float64(managed.ActiveClients()) })
	store.Watch("virtual_now_s", managed.Now)

	// Drive: one MAPE cycle per window, then sample and evaluate at the
	// corresponding virtual timestamp.
	base := time.Now().Truncate(time.Second)
	virtual := func() time.Time { return base.Add(time.Duration(managed.Now() * float64(time.Second))) }
	store.Sample(virtual())
	eng.Evaluate(virtual())
	ctx := context.Background()
	consecutive := 0
	for i := 0; i < cycles; i++ {
		// Mirror Controller.Run's tolerance: an isolated cycle failure
		// (e.g. a momentarily unplannable pool mid-storm) is journalled by
		// the controller and ridden out; three in a row abort the soak.
		if err := ctrl.Step(ctx); err != nil {
			consecutive++
			if consecutive >= 3 {
				return fmt.Errorf("cycle %d: %d consecutive failures, last: %w", i, consecutive, err)
			}
		} else {
			consecutive = 0
		}
		now := virtual()
		store.Sample(now)
		eng.Evaluate(now)
	}

	// Assemble the report.
	incidents := ctrl.Incidents()
	if incidents == nil {
		incidents = []autonomic.Incident{}
	}
	rep := Report{
		Families:      fams,
		DurationS:     *duration,
		WindowS:       *window,
		Cycles:        cycles,
		Nodes:         *nodes,
		Clients:       *clients,
		Seed:          *seed,
		Planner:       plan.Planner,
		WallSeconds:   time.Since(start).Seconds(),
		Completed:     managed.Completed(),
		Failed:        managed.Failed(),
		Objectives:    eng.Objectives(),
		Alerts:        eng.Alerts(),
		Incidents:     incidents,
		MTTR:          autonomic.SummarizeMTTR(incidents),
		Adaptation:    ctrl.Status(),
		Timeline:      timeline(store, base),
		JournalEvents: journal.Total(),
		Schedule:      schedule,
	}
	if tot := rep.Completed + rep.Failed; tot > 0 {
		rep.Availability = float64(rep.Completed) / float64(tot)
	}
	if lats := managed.Latencies(); len(lats) > 0 {
		rep.LatencyP50S = stats.Percentile(lats, 50)
		rep.LatencyP99S = stats.Percentile(lats, 99)
	}

	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}

	return gate(rep, *minAvail, *reqIncidents, *reqResolved)
}

// gate turns report-level quality requirements into a nonzero exit.
func gate(rep Report, minAvail float64, reqIncidents int, reqResolved bool) error {
	if minAvail >= 0 && rep.Availability < minAvail {
		return fmt.Errorf("availability %.6f below -min-availability %.6f", rep.Availability, minAvail)
	}
	if rep.MTTR.Resolved < reqIncidents {
		return fmt.Errorf("%d resolved incidents, -require-incidents wants %d", rep.MTTR.Resolved, reqIncidents)
	}
	for _, in := range rep.Incidents {
		if in.Resolved && !(in.MTTRVirtualSeconds > 0) {
			return fmt.Errorf("incident %d resolved with non-positive MTTR %g", in.ID, in.MTTRVirtualSeconds)
		}
	}
	if reqResolved {
		ok := false
		for _, a := range rep.Alerts {
			fired, resolved := false, false
			for _, tr := range a.Transitions {
				if tr.To == slo.StateFiring {
					fired = true
				}
				if tr.To == slo.StateResolved {
					resolved = true
				}
			}
			if fired && resolved {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("no alert completed the firing->resolved lifecycle")
		}
	}
	return nil
}

// timeline converts the store's samples to virtual-second offsets.
func timeline(store *obs.Store, base time.Time) map[string][]TimePoint {
	out := make(map[string][]TimePoint)
	for name, pts := range store.Snapshot() {
		tl := make([]TimePoint, len(pts))
		for i, p := range pts {
			tl[i] = TimePoint{VirtualS: p.T.Sub(base).Seconds(), Value: p.V}
		}
		out[name] = tl
	}
	return out
}

// selectPlanner mirrors the daemon's planner names for the initial
// deployment (the replan step inside the loop stays the portfolio race).
func selectPlanner(name string) (core.Planner, error) {
	switch name {
	case "", "heuristic":
		return core.NewHeuristic(), nil
	case "heuristic+swap":
		return &core.SwapRefiner{Inner: core.NewHeuristic()}, nil
	default:
		return nil, fmt.Errorf("unknown planner %q (have heuristic, heuristic+swap)", name)
	}
}
