// Command adept plans a middleware deployment for a platform description:
// the Automatic Deployment Planning Tool the paper's future-work section
// names. It reads a platform JSON file, runs the chosen planner, prints the
// predicted throughput and bottleneck, and writes the GoDIET-style
// deployment XML.
//
// Usage:
//
//	adept -platform platform.json -dgemm 310 [-planner heuristic]
//	      [-demand 100] [-out deployment.xml] [-dot deployment.dot]
//
// Generate a synthetic platform to experiment with:
//
//	adept -gen 200 -gen-min 100 -gen-max 800 -platform out.json
//
// Or a heterogeneous-links multi-cluster grid (cluster 0 on the fast
// intra-cluster link, the rest behind the slow inter-cluster uplink):
//
//	adept -gen 15 -gen-clusters 3 -gen-intra 100 -gen-inter 2 -platform grid.json
package main

import (
	"flag"
	"fmt"
	"os"

	"adept/internal/core"
	"adept/internal/model"
	"adept/internal/obs"
	"adept/internal/platform"
	"adept/internal/service"
	"adept/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "adept:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		platformPath = flag.String("platform", "", "platform description JSON file (required)")
		plannerName  = flag.String("planner", "heuristic", "planner: heuristic, heuristic+swap, star, balanced, dary, exhaustive, portfolio")
		dgemmN       = flag.Int("dgemm", 310, "DGEMM problem dimension defining the service cost")
		wapp         = flag.Float64("wapp", 0, "service cost in MFlop (overrides -dgemm when set)")
		demand       = flag.Float64("demand", 0, "client demand in requests/second (0 = maximize)")
		outXML       = flag.String("out", "", "write deployment XML to this file ('-' for stdout)")
		outDOT       = flag.String("dot", "", "write Graphviz DOT rendering to this file")
		genN         = flag.Int("gen", 0, "generate a synthetic platform with this many nodes and exit")
		genMin       = flag.Float64("gen-min", 100, "synthetic platform: minimum node power (MFlop/s)")
		genMax       = flag.Float64("gen-max", 800, "synthetic platform: maximum node power (MFlop/s)")
		genBW        = flag.Float64("gen-bw", 100, "synthetic platform: link bandwidth (Mb/s)")
		genSeed      = flag.Int64("gen-seed", 1, "synthetic platform: random seed")
		genClusters  = flag.Int("gen-clusters", 0, "synthetic platform: multi-cluster grid with this many clusters (>= 2; cluster 0 keeps the fast intra link, the rest sit behind the inter-cluster uplink)")
		genIntra     = flag.Float64("gen-intra", 0, "multi-cluster: intra-cluster link bandwidth in Mb/s (default -gen-bw)")
		genInter     = flag.Float64("gen-inter", 0, "multi-cluster: inter-cluster uplink bandwidth in Mb/s (default intra/10)")
		logFormat    = flag.String("log-format", "text", "diagnostic log format: text, json (plan output stays on stdout)")
		logLevel     = flag.String("log-level", "info", "diagnostic log level: debug, info, warn, error")
	)
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		return err
	}
	logger, err := obs.NewLogger(*logFormat, os.Stderr, level)
	if err != nil {
		return err
	}

	if *genN > 0 {
		if *platformPath == "" {
			return fmt.Errorf("-gen requires -platform for the output path")
		}
		p, err := platform.Generate(platform.GenSpec{
			Name: "generated", N: *genN, Bandwidth: *genBW,
			MinPower: *genMin, MaxPower: *genMax, Seed: *genSeed,
			Clusters: *genClusters, IntraBandwidth: *genIntra, InterBandwidth: *genInter,
		})
		if err != nil {
			return err
		}
		if err := p.SaveJSON(*platformPath); err != nil {
			return err
		}
		logger.Info("platform written", "path", *platformPath, "platform", p.String())
		return nil
	}

	if *platformPath == "" {
		flag.Usage()
		return fmt.Errorf("missing -platform")
	}
	plat, err := platform.LoadJSON(*platformPath)
	if err != nil {
		return err
	}

	cost := *wapp
	if cost == 0 {
		cost = workload.DGEMM{N: *dgemmN}.MFlop()
	}
	req := core.Request{
		Platform: plat,
		Costs:    model.DIETDefaults(),
		Wapp:     cost,
		Demand:   workload.Demand(*demand),
	}

	planner, err := selectPlanner(*plannerName)
	if err != nil {
		return err
	}
	plan, err := planner.Plan(req)
	if err != nil {
		return err
	}

	fmt.Println(plan.Summary())
	if req.Demand.Bounded() {
		fmt.Printf("demand-capped throughput: %.2f req/s (demand %.2f)\n", plan.Capped, *demand)
	}
	fmt.Printf("platform: %s\n", plat)
	fmt.Println()
	fmt.Print(plan.Hierarchy)

	if *outXML != "" {
		if *outXML == "-" {
			if err := plan.Hierarchy.WriteXML(os.Stdout); err != nil {
				return err
			}
		} else if err := plan.Hierarchy.SaveXML(*outXML); err != nil {
			return err
		} else {
			logger.Info("deployment XML written", "path", *outXML)
		}
	}
	if *outDOT != "" {
		f, err := os.Create(*outDOT)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := plan.Hierarchy.WriteDOT(f); err != nil {
			return err
		}
		logger.Info("DOT rendering written", "path", *outDOT)
	}
	return nil
}

// selectPlanner delegates to the shared registry so the CLI and the
// adeptd daemon accept the same planner names.
func selectPlanner(name string) (core.Planner, error) {
	return service.SelectPlanner(name)
}
