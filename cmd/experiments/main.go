// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments              # run everything at full scale
//	experiments table4 fig6  # run selected experiments
//	experiments -quick       # reduced scale (seconds instead of minutes)
//	experiments -list        # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"adept/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		quick = flag.Bool("quick", false, "reduced-scale runs")
		list  = flag.Bool("list", false, "list experiment IDs and exit")
		seed  = flag.Int64("seed", 0, "override the default random seed")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return nil
	}

	params := experiments.Defaults()
	params.Quick = *quick
	if *seed != 0 {
		params.Seed = *seed
	}

	ids := flag.Args()
	if len(ids) == 0 {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		runner, ok := experiments.Lookup(id)
		if !ok {
			return fmt.Errorf("unknown experiment %q (try -list)", id)
		}
		start := time.Now()
		rep, err := runner(params)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Print(rep.Render())
		fmt.Printf("(%s in %s)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
