// Command adeptload is a closed-loop load generator for the adeptd
// planning daemon: the serving-layer counterpart of scripts/bench.sh. It
// drives POST /v1/plan with a configurable mix of hot keys (repeated
// requests that coalesce and hit the plan cache) and cold keys (unique
// content addresses that force a fresh planner run), paces them at a
// target request rate, and reports achieved throughput, a latency
// histogram with percentiles, and the daemon-side outcome mix (cached /
// coalesced / fresh / shed).
//
// Usage:
//
//	adeptload [-url http://localhost:8080] [-duration 10s] [-rps 200]
//	          [-conns 8] [-hot 0.9] [-hot-keys 4] [-nodes 60]
//	          [-planner heuristic] [-seed 1] [-json]
//
// -url accepts a comma-separated list of targets for clustered adeptd
// fleets: requests round-robin across every target, hot platforms are
// registered on the first target and polled on all of them until the
// cluster's registry replication converges, and the daemon-side counter
// deltas are summed across every member — a load window against a
// cluster is one logical run, not N disjoint ones. (The old single-URL
// behaviour scraped whichever peer -url named and silently attributed
// the whole cluster's work to it.)
//
// With -rps 0 the workers run unpaced (pure closed loop: each connection
// issues its next request as soon as the previous one answers), which
// measures the daemon's saturation throughput. A paced run held below
// saturation measures latency under load instead; 429 responses count as
// shed, not as errors, since backpressure is the daemon behaving as
// configured (see -queue on adeptd).
//
// The generator scrapes every target's GET /metrics exposition before
// and after the window; the -json summary then carries a "server" object
// of daemon-side counter deltas (requests, plans executed, cache hits
// and misses, coalesced, rejected, peer forwards/fallbacks) so client-
// and server-side views of the same run land in one artifact. A scrape
// failure on any target is a hard error: a partial scrape would report
// deltas that silently undercount the fleet.
//
// The generator registers its hot platforms under adeptload-hot-<i> via
// PUT /v1/platforms, so the daemon must be reachable before the run.
// Exit status is non-zero when no request succeeded.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"adept/internal/obs"
	"adept/internal/platform"
	"adept/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "adeptload:", err)
		os.Exit(1)
	}
}

// planWire is the subset of adeptd's request/response bodies the
// generator needs; duplicating the three fields keeps the binary free of
// a dependency on internal/service's server types.
type planWire struct {
	PlatformName string  `json:"platform_name,omitempty"`
	Planner      string  `json:"planner,omitempty"`
	Wapp         float64 `json:"wapp,omitempty"`
	DgemmN       int     `json:"dgemm_n,omitempty"`
}

type planAnswer struct {
	Cached    bool `json:"cached"`
	Coalesced bool `json:"coalesced"`
}

// recorder accumulates one worker's observations; workers never share a
// recorder, so recording is lock-free and merged after the run.
type recorder struct {
	latencies []float64 // seconds, successful requests only
	ok        int
	shed      int // 429: admission control, not an error
	errors    int
	cached    int
	coalesced int
	fresh     int
}

func (r *recorder) merge(o *recorder) {
	r.latencies = append(r.latencies, o.latencies...)
	r.ok += o.ok
	r.shed += o.shed
	r.errors += o.errors
	r.cached += o.cached
	r.coalesced += o.coalesced
	r.fresh += o.fresh
}

func run() error {
	var (
		url       = flag.String("url", "http://localhost:8080", "adeptd base URL, or a comma-separated list of cluster peers")
		duration  = flag.Duration("duration", 10*time.Second, "load window")
		rps       = flag.Float64("rps", 0, "target request rate (0 = unpaced closed loop)")
		conns     = flag.Int("conns", 8, "concurrent closed-loop connections")
		hot       = flag.Float64("hot", 0.9, "fraction of requests on hot keys (cache/coalesce path)")
		hotKeys   = flag.Int("hot-keys", 4, "number of distinct hot keys")
		nodes     = flag.Int("nodes", 60, "platform size (nodes) per key")
		planner   = flag.String("planner", "", "planner to request (default heuristic)")
		seed      = flag.Int64("seed", 1, "platform generation seed")
		timeout   = flag.Duration("timeout", 10*time.Second, "per-request client timeout")
		jsonOut   = flag.Bool("json", false, "emit a JSON summary instead of text")
		logFormat = flag.String("log-format", "text", "diagnostic log format: text, json (the summary stays on stdout)")
		logLevel  = flag.String("log-level", "warn", "diagnostic log level: debug, info, warn, error")
		maxShed   = flag.Float64("max-shed", -1, "fail (exit nonzero) when the shed fraction exceeds this (e.g. 0.05; negative = no gate)")
		maxP99    = flag.Float64("max-p99-ms", -1, "fail (exit nonzero) when successful-request p99 exceeds this many ms (negative = no gate)")
	)
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		return err
	}
	logger, err := obs.NewLogger(*logFormat, os.Stderr, level)
	if err != nil {
		return err
	}
	if *conns <= 0 || *hotKeys <= 0 || *nodes < 2 {
		return fmt.Errorf("need positive -conns/-hot-keys and -nodes >= 2")
	}
	if *hot < 0 || *hot > 1 {
		return fmt.Errorf("-hot %g outside [0,1]", *hot)
	}

	targets := strings.Split(*url, ",")
	for i := range targets {
		targets[i] = strings.TrimRight(strings.TrimSpace(targets[i]), "/")
		if targets[i] == "" {
			return fmt.Errorf("-url contains an empty target in %q", *url)
		}
	}

	client := &http.Client{Timeout: *timeout}

	// Register the hot platforms on the first target. Each hot key is one
	// (platform, dgemm) pair, so repeated requests against it share one
	// content address. Against a cluster the registration replicates via
	// invalidation webhooks; the convergence wait below makes sure every
	// member can resolve the names before load starts.
	for i := 0; i < *hotKeys; i++ {
		p, err := platform.Generate(platform.GenSpec{
			Name: fmt.Sprintf("adeptload-hot-%d", i), N: *nodes,
			Bandwidth: 100, MinPower: 100, MaxPower: 800, Seed: *seed + int64(i),
		})
		if err != nil {
			return err
		}
		body, err := p.MarshalIndent()
		if err != nil {
			return err
		}
		req, err := http.NewRequest(http.MethodPut,
			fmt.Sprintf("%s/v1/platforms/adeptload-hot-%d", targets[0], i), bytes.NewReader(body))
		if err != nil {
			return err
		}
		resp, err := client.Do(req)
		if err != nil {
			return fmt.Errorf("register platform: %w (is adeptd running at %s?)", err, targets[0])
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("register platform: status %d", resp.StatusCode)
		}
	}
	if err := waitRegistered(client, targets, *hotKeys); err != nil {
		return err
	}
	logger.Info("hot platforms registered on every target", "targets", len(targets), "hot_keys", *hotKeys)

	before, err := scrapeAll(client, targets)
	if err != nil {
		return fmt.Errorf("pre-run metrics scrape: %w", err)
	}

	// Pacing: a token channel filled at the target rate. Unpaced runs get
	// a nil channel (never selected) and issue back to back.
	var tokens chan struct{}
	stop := make(chan struct{})
	if *rps > 0 {
		tokens = make(chan struct{}, *conns)
		interval := time.Duration(float64(time.Second) / *rps)
		if interval <= 0 {
			interval = time.Nanosecond
		}
		go func() {
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					select {
					case tokens <- struct{}{}:
					default: // generator is behind; drop the token, not the pace
					}
				}
			}
		}()
	}

	var coldSeq atomic.Int64
	deadline := time.Now().Add(*duration)
	recs := make([]*recorder, *conns)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *conns; w++ {
		rec := &recorder{}
		recs[w] = rec
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)*7919))
			// Round-robin across the fleet, each worker starting at its
			// own offset so the first requests spread over every target.
			turn := w
			for time.Now().Before(deadline) {
				if tokens != nil {
					select {
					case <-tokens:
					case <-time.After(time.Until(deadline)):
						return
					}
				}
				target := targets[turn%len(targets)]
				turn++
				wire := planWire{
					PlatformName: fmt.Sprintf("adeptload-hot-%d", rng.Intn(*hotKeys)),
					Planner:      *planner,
					DgemmN:       310,
				}
				if rng.Float64() >= *hot {
					// Cold key: a unique Wapp yields a unique content
					// address, forcing a fresh planner run.
					wire.DgemmN = 0
					wire.Wapp = 1e6 + float64(coldSeq.Add(1))
				}
				body, err := json.Marshal(wire)
				if err != nil {
					rec.errors++
					continue
				}
				t0 := time.Now()
				resp, err := client.Post(target+"/v1/plan", "application/json", bytes.NewReader(body))
				if err != nil {
					rec.errors++
					continue
				}
				switch resp.StatusCode {
				case http.StatusOK:
					var ans planAnswer
					if err := json.NewDecoder(resp.Body).Decode(&ans); err != nil {
						rec.errors++
					} else {
						rec.ok++
						rec.latencies = append(rec.latencies, time.Since(t0).Seconds())
						switch {
						case ans.Cached:
							rec.cached++
						case ans.Coalesced:
							rec.coalesced++
						default:
							rec.fresh++
						}
					}
				case http.StatusTooManyRequests:
					rec.shed++
				default:
					rec.errors++
				}
				// Drain before closing so the keep-alive connection is
				// reused; otherwise every shed/error response costs a fresh
				// TCP setup and the generator measures connection churn.
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	elapsed := time.Since(start)

	total := &recorder{}
	for _, rec := range recs {
		total.merge(rec)
	}

	after, err := scrapeAll(client, targets)
	if err != nil {
		return fmt.Errorf("post-run metrics scrape: %w", err)
	}
	server := metricDeltas(before, after)
	s := report(total, server, elapsed, *jsonOut)
	if total.ok == 0 {
		return fmt.Errorf("no request succeeded (%d shed, %d errors)", total.shed, total.errors)
	}
	// Quality gates for CI: the run itself succeeded, but the measured
	// service level may still be unacceptable.
	if *maxShed >= 0 && s.Requests > 0 {
		if frac := float64(s.Shed) / float64(s.Requests); frac > *maxShed {
			return fmt.Errorf("shed fraction %.4f exceeds -max-shed %.4f (%d of %d requests)", frac, *maxShed, s.Shed, s.Requests)
		}
	}
	if *maxP99 >= 0 && s.P99Millis > *maxP99 {
		return fmt.Errorf("p99 %.2fms exceeds -max-p99-ms %.2fms", s.P99Millis, *maxP99)
	}
	return nil
}

// serverDeltas are daemon-side counter increments over the load window,
// computed from two GET /metrics scrapes. They cross-check the client's
// view: e.g. client-side cached+coalesced should track the daemon's
// cache-hit and coalesced increments.
type serverDeltas struct {
	Requests      int64 `json:"requests"`
	PlansExecuted int64 `json:"plans_executed"`
	CacheHits     int64 `json:"cache_hits"`
	CacheMisses   int64 `json:"cache_misses"`
	Coalesced     int64 `json:"coalesced"`
	Rejected      int64 `json:"rejected"`
	// PeerForwards and PeerFallbacks come from the adeptd_peer_* families
	// and stay zero against a single-node daemon (the families are absent
	// there, and an absent metric deltas to zero).
	PeerForwards  int64 `json:"peer_forwards"`
	PeerFallbacks int64 `json:"peer_fallbacks"`
}

// waitRegistered polls every target until it resolves all hot platform
// names — against a cluster this is the registry replication converging;
// against a single daemon it passes on the first round.
func waitRegistered(client *http.Client, targets []string, hotKeys int) error {
	deadline := time.Now().Add(15 * time.Second)
	for {
		pending := ""
	scan:
		for _, target := range targets {
			for i := 0; i < hotKeys; i++ {
				resp, err := client.Get(fmt.Sprintf("%s/v1/platforms/adeptload-hot-%d", target, i))
				if err != nil {
					return fmt.Errorf("poll %s: %w", target, err)
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					pending = fmt.Sprintf("%s missing adeptload-hot-%d (status %d)", target, i, resp.StatusCode)
					break scan
				}
			}
		}
		if pending == "" {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("hot platforms did not replicate to every target: %s", pending)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// scrapeAll scrapes every target and sums the family totals, so the
// deltas describe the whole fleet. Any failed scrape fails the run: a
// partial sum would silently undercount.
func scrapeAll(client *http.Client, targets []string) (map[string]float64, error) {
	sums := make(map[string]float64)
	for _, target := range targets {
		one, err := scrapeMetrics(client, target)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", target, err)
		}
		for name, v := range one {
			sums[name] += v
		}
	}
	return sums, nil
}

// scrapeMetrics fetches url/metrics and sums every series into its
// family total, labels stripped — adeptd_requests_total{endpoint="plan"}
// and {endpoint="metrics"} fold into one adeptd_requests_total number.
// Histogram series (_bucket) are skipped: their cumulative le buckets
// would overcount the family.
func scrapeMetrics(client *http.Client, base string) (map[string]float64, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("GET /metrics: status %d", resp.StatusCode)
	}
	sums := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		if strings.HasSuffix(name, "_bucket") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			continue
		}
		sums[name] += v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return sums, nil
}

// metricDeltas subtracts two scrapes for the counters the load report
// cares about.
func metricDeltas(before, after map[string]float64) *serverDeltas {
	d := func(name string) int64 { return int64(after[name] - before[name]) }
	return &serverDeltas{
		Requests:      d("adeptd_requests_total"),
		PlansExecuted: d("adeptd_plans_executed_total"),
		CacheHits:     d("adeptd_cache_hits_total"),
		CacheMisses:   d("adeptd_cache_misses_total"),
		Coalesced:     d("adeptd_coalesced_total"),
		Rejected:      d("adeptd_rejected_total"),
		PeerForwards:  d("adeptd_peer_forwards_total"),
		PeerFallbacks: d("adeptd_peer_fallbacks_total"),
	}
}

// summary is the -json output schema.
type summary struct {
	DurationSeconds float64       `json:"duration_seconds"`
	Requests        int           `json:"requests"`
	OK              int           `json:"ok"`
	Shed            int           `json:"shed"`
	Errors          int           `json:"errors"`
	Cached          int           `json:"cached"`
	Coalesced       int           `json:"coalesced"`
	Fresh           int           `json:"fresh"`
	AchievedRPS     float64       `json:"achieved_rps"`
	P50Millis       float64       `json:"p50_ms"`
	P90Millis       float64       `json:"p90_ms"`
	P99Millis       float64       `json:"p99_ms"`
	MaxMillis       float64       `json:"max_ms"`
	Server          *serverDeltas `json:"server,omitempty"`
}

func report(r *recorder, server *serverDeltas, elapsed time.Duration, asJSON bool) summary {
	s := summary{
		DurationSeconds: elapsed.Seconds(),
		Requests:        r.ok + r.shed + r.errors,
		OK:              r.ok,
		Shed:            r.shed,
		Errors:          r.errors,
		Cached:          r.cached,
		Coalesced:       r.coalesced,
		Fresh:           r.fresh,
		AchievedRPS:     float64(r.ok) / elapsed.Seconds(),
		Server:          server,
	}
	if len(r.latencies) > 0 {
		s.P50Millis = stats.Percentile(r.latencies, 50) * 1e3
		s.P90Millis = stats.Percentile(r.latencies, 90) * 1e3
		s.P99Millis = stats.Percentile(r.latencies, 99) * 1e3
		max := r.latencies[0]
		for _, v := range r.latencies {
			if v > max {
				max = v
			}
		}
		s.MaxMillis = max * 1e3
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s)
		return s
	}

	fmt.Printf("adeptload: %d requests in %.2fs (%.1f ok req/s)\n", s.Requests, s.DurationSeconds, s.AchievedRPS)
	fmt.Printf("  ok %d (cached %d, coalesced %d, fresh %d)  shed(429) %d  errors %d\n",
		s.OK, s.Cached, s.Coalesced, s.Fresh, s.Shed, s.Errors)
	if server != nil {
		fmt.Printf("  server: requests %d, plans executed %d, cache %d/%d hit/miss, coalesced %d, rejected %d\n",
			server.Requests, server.PlansExecuted, server.CacheHits, server.CacheMisses, server.Coalesced, server.Rejected)
		if server.PeerForwards > 0 || server.PeerFallbacks > 0 {
			fmt.Printf("  cluster: peer forwards %d, fallbacks %d\n", server.PeerForwards, server.PeerFallbacks)
		}
	}
	if len(r.latencies) == 0 {
		return s
	}
	fmt.Printf("  latency p50=%.2fms p90=%.2fms p99=%.2fms max=%.2fms\n",
		s.P50Millis, s.P90Millis, s.P99Millis, s.MaxMillis)
	printHistogram(r.latencies)
	return s
}

// printHistogram renders successful-request latencies into doubling
// buckets starting at 0.25ms.
func printHistogram(latencies []float64) {
	sorted := append([]float64(nil), latencies...)
	sort.Float64s(sorted)
	edge := 0.25e-3
	counts := []int{}
	edges := []float64{}
	i := 0
	for i < len(sorted) {
		n := 0
		for i < len(sorted) && sorted[i] < edge {
			n++
			i++
		}
		counts = append(counts, n)
		edges = append(edges, edge)
		edge *= 2
	}
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	for b, c := range counts {
		if c == 0 && (b == 0 || counts[b-1] == 0) {
			continue // skip leading/embedded empty runs at the edges
		}
		bar := ""
		if maxCount > 0 {
			bar = string(bytes.Repeat([]byte{'#'}, c*40/maxCount))
		}
		fmt.Printf("  < %8.2fms %6d %s\n", edges[b]*1e3, c, bar)
	}
}
