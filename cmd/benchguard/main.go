// Command benchguard is the planner-benchmark regression gate.
//
// It has three modes, composable in one invocation (scripts/bench.sh wires
// them into CI):
//
//	benchguard -parse bench.txt -out BENCH_plan.json
//	    Parse `go test -bench` output into a JSON summary (ns/op, B/op,
//	    allocs/op per benchmark, averaged over -count repetitions).
//
//	benchguard -new BENCH_plan.json -require-speedup 10 \
//	    -speedup-pair BenchmarkHeuristicPlanNaive5k:BenchmarkHeuristicPlan5k
//	    Enforce a minimum within-run speedup ratio (numerator is the slow
//	    benchmark). Within-run ratios are machine-independent, so this
//	    gate is stable across laptops and CI runners.
//
//	benchguard -new BENCH_plan.json -require-max-ratio 2 \
//	    -max-ratio-pair BenchmarkHeuristicPlanClustered5k:BenchmarkHeuristicPlan5k
//	    The inverse gate: the first benchmark may cost at most the given
//	    multiple of the second (also a within-run, machine-independent
//	    ratio). Used to cap the overhead a feature (e.g. heterogeneous
//	    link support) may add over its baseline path.
//
//	benchguard -new BENCH_plan.json \
//	    -require-max-ns BenchmarkHeuristicPlan1M:1000000000
//	    Enforce an absolute ns/op ceiling per benchmark. Unlike the ratio
//	    gates this is machine-dependent, so it is reserved for headline
//	    latency contracts (a million-node plan stays sub-second) with the
//	    ceiling set at a comfortable multiple of the measured cost.
//
//	benchguard -base old.json -new new.json -tol 0.20 [-allocs-tol 0.20]
//	    Fail when any benchmark present in both files regressed by more
//	    than the tolerance in ns/op or allocs/op. Absolute numbers are
//	    machine-dependent: compare only files recorded on the same class
//	    of machine (CI keeps its own rolling baseline via the actions
//	    cache).
//
//	benchguard -base old.json -new new.json -roll-out merged.json
//	    Write the per-benchmark best-ever merge of the two files: the
//	    rolling baseline advances only on improvement, so sub-threshold
//	    regressions cannot ratchet it.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Metrics is one benchmark's averaged result.
type Metrics struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Runs        int     `json:"runs"`
}

// File is the BENCH_plan.json schema.
type File struct {
	Benchmarks map[string]*Metrics `json:"benchmarks"`
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchguard: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	parse := flag.String("parse", "", "path to `go test -bench` output to parse")
	out := flag.String("out", "BENCH_plan.json", "JSON output path for -parse")
	newPath := flag.String("new", "", "freshly recorded BENCH_plan.json")
	basePath := flag.String("base", "", "baseline BENCH_plan.json to compare -new against")
	tol := flag.Float64("tol", 0.20, "allowed relative regression in ns/op")
	allocsTol := flag.Float64("allocs-tol", -1, "allowed relative regression in allocs/op (default: same as -tol)")
	rollOut := flag.String("roll-out", "", "write a best-ever merge of -base and -new (per-benchmark minima) to this path; prevents sub-threshold regressions from ratcheting the rolling baseline")
	requireSpeedup := flag.Float64("require-speedup", 0, "minimum slow/fast ns/op ratio for every -speedup-pair")
	requireMaxRatio := flag.Float64("require-max-ratio", 0, "maximum first/second ns/op ratio for every -max-ratio-pair")
	var pairs multiFlag
	flag.Var(&pairs, "speedup-pair", "slowBench:fastBench pair for -require-speedup (repeatable)")
	var ratioPairs multiFlag
	flag.Var(&ratioPairs, "max-ratio-pair", "bench:baselineBench pair for -require-max-ratio (repeatable)")
	var maxNs multiFlag
	flag.Var(&maxNs, "require-max-ns", "bench:ns absolute ns/op ceiling (repeatable)")
	flag.Parse()

	if *parse != "" {
		f, err := parseBenchOutput(*parse)
		if err != nil {
			fail("%v", err)
		}
		if len(f.Benchmarks) == 0 {
			fail("no benchmark lines found in %s", *parse)
		}
		data, err := json.MarshalIndent(f, "", "  ")
		if err != nil {
			fail("%v", err)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fail("%v", err)
		}
		fmt.Printf("benchguard: wrote %d benchmarks to %s\n", len(f.Benchmarks), *out)
	}

	if *requireSpeedup > 0 {
		if *newPath == "" {
			fail("-require-speedup needs -new")
		}
		cur := loadFile(*newPath)
		if len(pairs) == 0 {
			fail("-require-speedup needs at least one -speedup-pair")
		}
		for _, pair := range pairs {
			slow, fast, ok := strings.Cut(pair, ":")
			if !ok {
				fail("malformed -speedup-pair %q (want slow:fast)", pair)
			}
			sm, fm := cur.Benchmarks[slow], cur.Benchmarks[fast]
			if sm == nil || fm == nil {
				fail("speedup pair %q: benchmark missing from %s", pair, *newPath)
			}
			ratio := sm.NsPerOp / fm.NsPerOp
			fmt.Printf("benchguard: %s / %s = %.1fx (required ≥ %.1fx)\n", slow, fast, ratio, *requireSpeedup)
			if ratio < *requireSpeedup {
				fail("speedup %.2fx below required %.2fx", ratio, *requireSpeedup)
			}
		}
	}

	if *requireMaxRatio > 0 {
		if *newPath == "" {
			fail("-require-max-ratio needs -new")
		}
		cur := loadFile(*newPath)
		if len(ratioPairs) == 0 {
			fail("-require-max-ratio needs at least one -max-ratio-pair")
		}
		for _, pair := range ratioPairs {
			bench, base, ok := strings.Cut(pair, ":")
			if !ok {
				fail("malformed -max-ratio-pair %q (want bench:baseline)", pair)
			}
			bm, sm := cur.Benchmarks[bench], cur.Benchmarks[base]
			if bm == nil || sm == nil {
				fail("max-ratio pair %q: benchmark missing from %s", pair, *newPath)
			}
			ratio := bm.NsPerOp / sm.NsPerOp
			fmt.Printf("benchguard: %s / %s = %.2fx (required ≤ %.2fx)\n", bench, base, ratio, *requireMaxRatio)
			if ratio > *requireMaxRatio {
				fail("ratio %.2fx above allowed %.2fx", ratio, *requireMaxRatio)
			}
		}
	}

	if len(maxNs) > 0 {
		if *newPath == "" {
			fail("-require-max-ns needs -new")
		}
		cur := loadFile(*newPath)
		for _, pair := range maxNs {
			name, limStr, ok := strings.Cut(pair, ":")
			if !ok {
				fail("malformed -require-max-ns %q (want bench:ns)", pair)
			}
			lim, err := strconv.ParseFloat(limStr, 64)
			if err != nil || lim <= 0 {
				fail("malformed -require-max-ns limit %q", limStr)
			}
			m := cur.Benchmarks[name]
			if m == nil {
				fail("max-ns gate %q: benchmark missing from %s", name, *newPath)
			}
			fmt.Printf("benchguard: %s = %.0f ns/op (required ≤ %.0f)\n", name, m.NsPerOp, lim)
			if m.NsPerOp > lim {
				fail("%s ns/op %.0f above ceiling %.0f", name, m.NsPerOp, lim)
			}
		}
	}

	// -roll-out is a merge operation, not a gate: the tolerance compare
	// runs only when no merge was requested (CI gates first, rolls after).
	if *basePath != "" && *rollOut == "" {
		if *newPath == "" {
			fail("-base needs -new")
		}
		if *allocsTol < 0 {
			*allocsTol = *tol
		}
		base, cur := loadFile(*basePath), loadFile(*newPath)
		regressed := 0
		compared := 0
		for name, b := range base.Benchmarks {
			c, ok := cur.Benchmarks[name]
			if !ok {
				fmt.Printf("benchguard: %s missing from new run (skipped)\n", name)
				continue
			}
			compared++
			if r := rel(c.NsPerOp, b.NsPerOp); r > *tol {
				fmt.Fprintf(os.Stderr, "benchguard: %s ns/op regressed %.1f%% (%.0f -> %.0f)\n", name, 100*r, b.NsPerOp, c.NsPerOp)
				regressed++
			}
			if r := rel(c.AllocsPerOp, b.AllocsPerOp); r > *allocsTol {
				fmt.Fprintf(os.Stderr, "benchguard: %s allocs/op regressed %.1f%% (%.0f -> %.0f)\n", name, 100*r, b.AllocsPerOp, c.AllocsPerOp)
				regressed++
			}
		}
		if regressed > 0 {
			fail("%d metric(s) regressed beyond tolerance", regressed)
		}
		fmt.Printf("benchguard: %d benchmarks within tolerance (ns %.0f%%, allocs %.0f%%) of baseline\n", compared, 100**tol, 100**allocsTol)
	}

	if *rollOut != "" {
		if *newPath == "" {
			fail("-roll-out needs -new")
		}
		cur := loadFile(*newPath)
		merged := &File{Benchmarks: map[string]*Metrics{}}
		if *basePath != "" {
			if base, err := os.ReadFile(*basePath); err == nil {
				var f File
				if err := json.Unmarshal(base, &f); err == nil {
					for name, m := range f.Benchmarks {
						cp := *m
						merged.Benchmarks[name] = &cp
					}
				}
			}
		}
		for name, c := range cur.Benchmarks {
			b, ok := merged.Benchmarks[name]
			if !ok {
				cp := *c
				merged.Benchmarks[name] = &cp
				continue
			}
			// Keep the best-ever value per metric: a run that passed the
			// tolerance gate but was slightly slower must not become the
			// new yardstick, or sub-threshold regressions compound.
			b.NsPerOp = min(b.NsPerOp, c.NsPerOp)
			b.BytesPerOp = min(b.BytesPerOp, c.BytesPerOp)
			b.AllocsPerOp = min(b.AllocsPerOp, c.AllocsPerOp)
			b.Runs = c.Runs
		}
		data, err := json.MarshalIndent(merged, "", "  ")
		if err != nil {
			fail("%v", err)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*rollOut, data, 0o644); err != nil {
			fail("%v", err)
		}
		fmt.Printf("benchguard: rolled best-ever baseline (%d benchmarks) to %s\n", len(merged.Benchmarks), *rollOut)
	}
}

// rel returns the relative increase of cur over base. The denominator is
// floored at one unit so a zero baseline (e.g. 0 allocs/op) still gates:
// rel(1000, 0) = 1000, not 0.
func rel(cur, base float64) float64 {
	if base < 1 {
		base = 1
	}
	return (cur - base) / base
}

func loadFile(path string) *File {
	data, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		fail("%s: %v", path, err)
	}
	return &f
}

// parseBenchOutput reads standard `go test -bench -benchmem` output.
// Repeated lines for the same benchmark (-count > 1) are averaged.
func parseBenchOutput(path string) (*File, error) {
	in, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer in.Close()
	f := &File{Benchmarks: map[string]*Metrics{}}
	sums := map[string]*Metrics{}
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		// "BenchmarkName-8  N  123 ns/op  45 B/op  6 allocs/op"
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		m := sums[name]
		if m == nil {
			m = &Metrics{}
			sums[name] = m
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				m.NsPerOp += v
			case "B/op":
				m.BytesPerOp += v
			case "allocs/op":
				m.AllocsPerOp += v
			}
		}
		m.Runs++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for name, m := range sums {
		runs := float64(m.Runs)
		f.Benchmarks[name] = &Metrics{
			NsPerOp:     m.NsPerOp / runs,
			BytesPerOp:  m.BytesPerOp / runs,
			AllocsPerOp: m.AllocsPerOp / runs,
			Runs:        m.Runs,
		}
	}
	return f, nil
}

// multiFlag collects repeated string flags.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }
