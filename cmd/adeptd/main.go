// Command adeptd serves deployment planning over HTTP: the long-running
// ADePT daemon. It wraps internal/service — a platform registry
// (journalled to -platform-dir so registrations survive restarts), a
// content-addressed sharded plan cache of pre-rendered responses,
// singleflight coalescing of identical concurrent requests, and a
// bounded worker pool that sheds excess load with 429 + Retry-After —
// behind a JSON API:
//
//	POST   /v1/plan              plan one deployment (cache-accelerated)
//	POST   /v1/plan/batch        fan one call out over many requests
//	GET    /v1/platforms         list registered platform names
//	GET    /v1/platforms/{name}  fetch a platform description
//	PUT    /v1/platforms/{name}  register/replace a platform description
//	DELETE /v1/platforms/{name}  remove a platform
//	GET    /v1/metrics           counters, cache stats, p50/p99 latency
//	GET    /metrics              Prometheus text exposition of the same
//	POST   /v1/deploy            launch a plan on the live middleware
//	POST   /v1/autonomic/start   deploy + start the MAPE-K control loop
//	POST   /v1/autonomic/stop    stop the loop and tear the system down
//	GET    /v1/autonomic/status  adaptation history, patches, throughput
//	GET    /v1/autonomic/events  the MAPE-K decision journal (?since=SEQ)
//	GET    /v1/autonomic/incidents  correlated incident records with MTTR
//	POST   /v1/autonomic/inject  background-load drift on a live server
//	GET    /v1/slo               SLO compliance, error budgets, burn rates
//	GET    /v1/alerts            burn-rate alert rule states + transitions
//	GET    /v1/cluster           ring membership, peer health, key ownership
//	POST   /v1/cluster/invalidate  peer registry-invalidation webhook (HMAC)
//	GET    /healthz              liveness probe
//	GET    /readyz               readiness probe (registry loaded, pool open)
//
// Clustering: -peers runs the daemon as one member of a static cluster.
// Every member is started with the same comma-separated membership list
// (its own -peer-self URL included); a consistent-hash ring over plan
// content addresses routes each /v1/plan request to the peer owning its
// digest (one hop at most — forwarded requests are always planned where
// they land), so the fleet shares one logical plan cache. Registry
// writes (PUT/DELETE /v1/platforms/*) carry monotonic versions and fan
// out to peers as HMAC-signed invalidation webhooks (-peer-secret or
// $ADEPTD_PEER_SECRET), converging every member's registry. A peer
// failure degrades to local planning — never to a client-visible error.
// Without -peers the daemon is the plain single-node service: no extra
// listeners, no peer traffic, byte-identical behaviour.
//
// Observability: GET /metrics serves Prometheus text exposition,
// GET /v1/autonomic/events the MAPE-K decision journal, and every
// response carries an X-Request-ID that also appears in the structured
// logs (-log-format json|text, -log-level debug|info|warn|error).
// -debug-addr starts a second listener serving net/http/pprof, kept off
// the public mux so profiling endpoints are never exposed by accident.
//
// Usage:
//
//	adeptd [-addr :8080] [-platform-dir dir] [-cache 256]
//	       [-workers N] [-queue 64] [-plan-timeout 30s]
//	       [-log-format text] [-log-level info] [-debug-addr addr]
//	       [-peers url1,url2,... -peer-self url] [-peer-secret s]
//	       [-peer-forward-timeout 2s] [-peer-ring-replicas 64]
//
// -platform-dir both preloads *.json platforms at startup and receives
// the write-through journal of later PUT /v1/platforms calls (atomic
// temp-file renames). -queue bounds jobs waiting for a planner worker;
// when it is full the daemon answers 429 with Retry-After instead of
// blocking (see cmd/adeptload for measuring this under load).
//
// Example session:
//
//	adeptd -addr :8080 &
//	curl -X PUT localhost:8080/v1/platforms/lyon --data @platform.json
//	curl -X POST localhost:8080/v1/plan \
//	     -d '{"platform_name":"lyon","dgemm_n":310}'
//	curl localhost:8080/v1/metrics
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers profiling handlers on http.DefaultServeMux for -debug-addr
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"adept/internal/cluster"
	"adept/internal/obs"
	"adept/internal/service"
	"adept/internal/slo"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "adeptd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		platformDir = flag.String("platform-dir", "", "directory of *.json platforms to preload into the registry")
		cacheSize   = flag.Int("cache", 256, "plan cache capacity (entries)")
		workers     = flag.Int("workers", 0, "concurrent planner runs (0 = GOMAXPROCS)")
		queue       = flag.Int("queue", 64, "queued planning jobs beyond the workers")
		planTimeout = flag.Duration("plan-timeout", 30*time.Second, "server-side cap on one planning run")
		logFormat   = flag.String("log-format", "text", "log output format: text, json")
		logLevel    = flag.String("log-level", "info", "log level: debug, info, warn, error")
		debugAddr   = flag.String("debug-addr", "", "serve net/http/pprof on this address (empty = disabled)")
		sloConfig   = flag.String("slo-config", "", "JSON file of SLO objectives and burn-rate alert rules (empty = built-in defaults)")
		sampleEvery = flag.Duration("sample-interval", time.Second, "time-series sampling and SLO evaluation tick")

		peers          = flag.String("peers", "", "comma-separated base URLs of every cluster member, this one included (empty = single-node)")
		peerSelf       = flag.String("peer-self", "", "this member's own base URL as it appears in -peers")
		peerSecret     = flag.String("peer-secret", "", "shared HMAC secret signing peer invalidation webhooks (default $ADEPTD_PEER_SECRET)")
		peerTimeout    = flag.Duration("peer-forward-timeout", 2*time.Second, "deadline for one forwarded plan exchange or webhook delivery attempt")
		peerRingPoints = flag.Int("peer-ring-replicas", 0, "virtual nodes per peer on the consistent-hash ring (0 = default)")
	)
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		return err
	}
	logger, err := obs.NewLogger(*logFormat, os.Stderr, level)
	if err != nil {
		return err
	}

	var sloCfg *slo.Config
	if *sloConfig != "" {
		data, err := os.ReadFile(*sloConfig)
		if err != nil {
			return err
		}
		cfg, err := slo.ParseConfig(data)
		if err != nil {
			return fmt.Errorf("%s: %w", *sloConfig, err)
		}
		sloCfg = &cfg
	}

	// The registry is built here rather than inside service.New so the
	// journal methods (LoadDir/PersistTo) stay reachable on the concrete
	// type after the server has abstracted it behind RegistryStore.
	registry := service.NewRegistry()

	srv, err := service.New(service.Config{
		CacheSize:      *cacheSize,
		Workers:        *workers,
		QueueDepth:     *queue,
		PlanTimeout:    *planTimeout,
		Logger:         logger,
		SLO:            sloCfg,
		SampleInterval: *sampleEvery,
		Registry:       registry,
	})
	if err != nil {
		return err
	}
	defer srv.Close()

	// Hold /readyz at 503 until the registry preload below has finished;
	// liveness (/healthz) answers 200 the moment the listener is up.
	srv.SetReady(false)

	if *platformDir != "" {
		// The platform dir is both the startup preload and the journal:
		// PUT /v1/platforms/* writes through to it (atomic temp-file
		// rename), so a restart pointed here keeps its registrations.
		if err := os.MkdirAll(*platformDir, 0o755); err != nil {
			return err
		}
		names, err := registry.LoadDir(*platformDir)
		if err != nil {
			return err
		}
		if err := registry.PersistTo(*platformDir); err != nil {
			return err
		}
		logger.Info("platforms loaded", "count", len(names), "dir", *platformDir, "names", fmt.Sprint(names))
	}

	if *peers != "" {
		secret := *peerSecret
		if secret == "" {
			secret = os.Getenv("ADEPTD_PEER_SECRET")
		}
		if *peerSelf == "" {
			return fmt.Errorf("-peers requires -peer-self (this member's own URL from the list)")
		}
		node, err := cluster.New(cluster.Config{
			Self:           *peerSelf,
			Peers:          strings.Split(*peers, ","),
			Secret:         secret,
			Replicas:       *peerRingPoints,
			ForwardTimeout: *peerTimeout,
			Registry:       srv.Registry(),
			Cache:          srv.Cache(),
			Logger:         logger,
		})
		if err != nil {
			return err
		}
		defer node.Close()
		srv.EnableCluster(node)
		logger.Info("cluster enabled", "self", *peerSelf, "peers", fmt.Sprint(node.Ring().Peers()))
	}
	srv.SetReady(true)

	if *debugAddr != "" {
		// pprof registered itself on http.DefaultServeMux via the blank
		// import; serve that mux on a separate listener so profiling never
		// leaks onto the public API address.
		go func() {
			logger.Info("debug listener (pprof) starting", "addr", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				logger.Error("debug listener failed", "error", err)
			}
		}()
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("adeptd listening", "addr", *addr, "planners", fmt.Sprint(service.PlannerNames()))

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		// Drain in-flight requests (a long exhaustive plan or a /v1/deploy
		// load window) before exiting; give up after a grace period.
		logger.Info("signal received, draining", "signal", sig.String())
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			return httpSrv.Close()
		}
		return nil
	}
}
