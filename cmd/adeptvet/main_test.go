package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles the adeptvet binary once into a test temp dir.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "adeptvet")
	cmd := exec.Command("go", "build", "-o", bin, "adept/cmd/adeptvet")
	cmd.Dir = "../.."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building adeptvet: %v\n%s", err, out)
	}
	return bin
}

// TestGoVetVettool drives the real `go vet -vettool` protocol end to
// end over the fixture module: cmd/go execs the tool with -V=full and
// -flags, shards it across per-package .cfg units, and the fixture's
// unsuppressed findings must fail the run while the suppressed ones
// stay silent.
func TestGoVetVettool(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and type-checks the fixture module")
	}
	bin := buildTool(t)
	testdata, err := filepath.Abs(filepath.Join("..", "..", "internal", "analysis", "testdata"))
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = testdata
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool over the fixtures succeeded; want findings\n%s", out)
	}
	text := string(out)
	for _, analyzer := range []string{"maporder", "nondet", "floataccum", "ctxflow", "metricname", "hotalloc"} {
		if !strings.Contains(text, analyzer+": ") {
			t.Errorf("go vet output missing %s finding\n%s", analyzer, text)
		}
	}
	// Out-of-scope packages must stay silent: maporder/misc is outside
	// the order-sensitive scope, nondet/obs is exempt. (Suppression of
	// individual lines is verified precisely by the analysistest
	// harness; here the coarse signal suffices.)
	for _, leak := range []string{"maporder/misc", "nondet/obs"} {
		if strings.Contains(text, leak) {
			t.Errorf("go vet output leaked %q; suppression or scoping broke under the vet protocol\n%s", leak, text)
		}
	}
}

// TestStandaloneSelfScan runs the built binary the way CI's lint job
// does: over the whole repository, expecting a clean exit.
func TestStandaloneSelfScan(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and type-checks the repository")
	}
	bin := buildTool(t)
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, "./...")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("adeptvet ./... failed: %v\n%s", err, out)
	}
}

// TestVersionFlag checks the -V=full protocol handshake cmd/go keys its
// vet cache on: one line, ending in a buildID.
func TestVersionFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := buildTool(t)
	out, err := exec.Command(bin, "-V=full").CombinedOutput()
	if err != nil {
		t.Fatalf("adeptvet -V=full: %v\n%s", err, out)
	}
	line := strings.TrimSpace(string(out))
	if !strings.Contains(line, " version ") || !strings.Contains(line, "buildID=") {
		t.Fatalf("-V=full output %q does not match the vet protocol shape", line)
	}
	if strings.Count(string(out), "\n") != 1 {
		t.Fatalf("-V=full must print exactly one line, got %q", out)
	}
}

// TestFlagsJSON checks the -flags handshake: cmd/go parses this JSON to
// split its command line into tool flags and package patterns.
func TestFlagsJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := buildTool(t)
	out, err := exec.Command(bin, "-flags").CombinedOutput()
	if err != nil {
		t.Fatalf("adeptvet -flags: %v\n%s", err, out)
	}
	text := string(out)
	if !strings.HasPrefix(strings.TrimSpace(text), "[") {
		t.Fatalf("-flags must print a JSON array, got %q", text)
	}
	for _, name := range []string{"maporder", "nondet", "floataccum", "ctxflow", "metricname", "hotalloc", "V"} {
		if !strings.Contains(text, `"Name": "`+name+`"`) {
			t.Errorf("-flags output missing flag %q\n%s", name, text)
		}
	}
}
