// Command adeptvet machine-enforces the planner's determinism, hot-path,
// and observability invariants with a project-specific static-analysis
// suite (see internal/analysis).
//
// Standalone, from the module root:
//
//	adeptvet ./...
//
// or as a vet tool, which shards the work across the build cache exactly
// like the built-in vet:
//
//	go vet -vettool=$(which adeptvet) ./...
//
// Both modes exit nonzero on any unsuppressed finding. Intentional
// exceptions are annotated in source as //adeptvet:allow <analyzer>
// <reason>; `adeptvet -allows ./...` lists every such directive for
// audit. Individual analyzers can be selected with their name as a flag
// (e.g. -maporder); when a subset is selected, the audit of stale allow
// directives is skipped, since only a full run can prove a directive
// dead.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"adept/internal/analysis"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("adeptvet: ")

	all := analysis.All()
	selected := make(map[string]*bool, len(all))
	for _, a := range all {
		selected[a.Name] = flag.Bool(a.Name, false, "run only "+a.Name+": "+a.Doc)
	}
	var (
		printFlags  = flag.Bool("flags", false, "print analyzer flags in JSON (go vet protocol)")
		jsonOut     = flag.Bool("json", false, "emit findings as JSON")
		listAllows  = flag.Bool("allows", false, "list every //adeptvet:allow directive instead of findings")
		showAllowed = flag.Bool("showallowed", false, "also print suppressed findings with their reasons")
	)
	flag.Var(versionFlag{}, "V", "print version and exit (go vet protocol)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: adeptvet [flags] ./...          (standalone)\n")
		fmt.Fprintf(os.Stderr, "       go vet -vettool=$(which adeptvet) ./...\n\nAnalyzers:\n")
		for _, a := range all {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(os.Stderr, "\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *printFlags {
		emitFlagsJSON()
		return
	}

	analyzers := all
	full := true
	var subset []*analysis.Analyzer
	for _, a := range all {
		if *selected[a.Name] {
			subset = append(subset, a)
		}
	}
	if len(subset) > 0 {
		analyzers, full = subset, false
	}
	opt := analysis.RunOptions{ReportStale: full}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		runVetUnit(args[0], analyzers, opt)
		return
	}
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	runStandalone(args, analyzers, opt, *jsonOut, *listAllows, *showAllowed)
}

// runVetUnit analyzes one compilation unit under the go vet -vettool
// protocol: findings go to stderr, exit 1 tells go vet the package
// failed.
func runVetUnit(cfg string, analyzers []*analysis.Analyzer, opt analysis.RunOptions) {
	findings, err := analysis.VetUnit(cfg, analyzers, opt)
	if err != nil {
		log.Fatal(err)
	}
	exit := 0
	for _, f := range analysis.Unsuppressed(findings) {
		fmt.Fprintln(os.Stderr, f)
		exit = 1
	}
	os.Exit(exit)
}

func runStandalone(patterns []string, analyzers []*analysis.Analyzer, opt analysis.RunOptions, jsonOut, listAllows, showAllowed bool) {
	wd, err := os.Getwd()
	if err != nil {
		log.Fatal(err)
	}
	units, err := analysis.Load(wd, patterns)
	if err != nil {
		log.Fatal(err)
	}

	var findings []analysis.Finding
	var allows []analysis.AllowRecord
	for _, u := range units {
		fs, as, err := analysis.RunUnit(u, analyzers, opt)
		if err != nil {
			log.Fatalf("%s: %v", u.ImportPath, err)
		}
		findings = append(findings, fs...)
		allows = append(allows, as...)
	}

	if listAllows {
		if jsonOut {
			writeJSON(os.Stdout, allows)
			return
		}
		for _, a := range allows {
			fmt.Printf("%s: allow %s: %s\n", a.Pos, a.Analyzer, a.Reason)
		}
		return
	}

	bad := analysis.Unsuppressed(findings)
	if jsonOut {
		out := findings
		if !showAllowed {
			out = bad
		}
		if out == nil {
			out = []analysis.Finding{}
		}
		writeJSON(os.Stdout, out)
	} else {
		for _, f := range findings {
			if f.Suppressed {
				if showAllowed {
					fmt.Printf("%s: %s: allowed: %s (%s)\n", f.Pos, f.Analyzer, f.Message, f.Reason)
				}
				continue
			}
			fmt.Println(f)
		}
	}
	if len(bad) > 0 {
		os.Exit(1)
	}
}

func writeJSON(w io.Writer, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	if err := enc.Encode(v); err != nil {
		log.Fatal(err)
	}
}

// emitFlagsJSON implements the `-flags` half of the go vet protocol:
// cmd/go asks the tool which flags it accepts before splitting its own
// command line into flags and package patterns.
func emitFlagsJSON() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	flags := []jsonFlag{}
	flag.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		flags = append(flags, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}

// versionFlag implements the `-V=full` half of the go vet protocol: the
// tool must describe itself with a content hash so the build cache can
// key vet results on the tool's identity.
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return true }
func (versionFlag) Get() any         { return nil }
func (versionFlag) String() string   { return "" }
func (versionFlag) Set(s string) error {
	if s != "full" {
		log.Fatalf("unsupported flag value: -V=%s (use -V=full)", s)
	}
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	f, err := os.Open(exe)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", exe, string(h.Sum(nil)))
	os.Exit(0)
	return nil
}
