// Command nes launches a planned deployment on the concurrent middleware
// runtime (the GoDIET role) and drives closed-loop client load against it,
// reporting measured throughput — the live counterpart of the simulator.
//
// Usage:
//
//	nes -xml deployment.xml -clients 10 -duration 5s [-transport tcp]
//	    [-dgemm 100] [-scale 0.01] [-real-dgemm]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"adept/internal/deploy"
	"adept/internal/model"
	"adept/internal/runtime"
	"adept/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "nes:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		xmlPath   = flag.String("xml", "", "deployment XML produced by adept (required)")
		transport = flag.String("transport", "chan", "transport: chan or tcp")
		clients   = flag.Int("clients", 4, "number of closed-loop clients")
		duration  = flag.Duration("duration", 5*time.Second, "measurement duration")
		dgemmN    = flag.Int("dgemm", 100, "DGEMM dimension defining the service cost")
		scale     = flag.Float64("scale", 0.01, "time scale: real seconds per virtual second")
		realWork  = flag.Bool("real-dgemm", false, "execute a real DGEMM per service request instead of the calibrated sleep")
		bandwidth = flag.Float64("bw", 100, "virtual link bandwidth (Mb/s)")
		metered   = flag.Bool("metered", false, "print per-message traffic statistics")
	)
	flag.Parse()
	if *xmlPath == "" {
		flag.Usage()
		return fmt.Errorf("missing -xml")
	}

	opts := runtime.Options{
		Costs:     model.DIETDefaults(),
		Bandwidth: *bandwidth,
		Wapp:      workload.DGEMM{N: *dgemmN}.MFlop(),
		TimeScale: *scale,
	}
	if *realWork {
		opts.DgemmN = *dgemmN
		opts.TimeScale = 0
	}

	cfg := deploy.Config{
		Transport: deploy.TransportKind(*transport),
		Metered:   *metered,
		Options:   opts,
	}
	dep, err := deploy.LaunchXMLFile(*xmlPath, cfg)
	if err != nil {
		return err
	}
	defer dep.Stop()

	stats := dep.Hierarchy.ComputeStats()
	fmt.Printf("deployed %q: %d agents, %d servers, depth %d, transport=%s\n",
		dep.Hierarchy.Name, stats.Agents, stats.Servers, stats.Depth, *transport)
	fmt.Printf("driving %d clients for %s...\n", *clients, *duration)

	load, err := dep.System.RunClients(context.Background(), *clients, *duration)
	if err != nil {
		return err
	}
	fmt.Printf("completed:  %d requests (%d failed, %d timeouts)\n", load.Completed, load.Failed, load.Timeouts)
	fmt.Printf("throughput: %.2f req/s", load.Throughput)
	if opts.TimeScale > 0 {
		fmt.Printf(" (virtual; time scale %.3g)", opts.TimeScale)
	}
	fmt.Println()

	for name, count := range dep.System.ServedCounts() {
		if count > 0 {
			fmt.Printf("  %-24s %6d served\n", name, count)
		}
	}
	if dep.Meter != nil {
		fmt.Println("traffic:")
		for typ, st := range dep.Meter.Stats() {
			fmt.Printf("  %-28s %8d msgs %10d bytes (%.1f B/msg)\n",
				typ, st.Count, st.Bytes, float64(st.Bytes)/float64(st.Count))
		}
	}
	if errs := dep.System.Errors(); len(errs) > 0 {
		fmt.Printf("protocol anomalies: %d (first: %v)\n", len(errs), errs[0])
	}
	return nil
}
