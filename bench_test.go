package adept_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"adept/internal/baseline"
	"adept/internal/core"
	"adept/internal/experiments"
	"adept/internal/model"
	"adept/internal/obs"
	"adept/internal/platform"
	"adept/internal/portfolio"
	"adept/internal/scenario"
	"adept/internal/service"
	"adept/internal/sim"
	"adept/internal/workload"
)

// The benchmarks below regenerate every table and figure of the paper's
// evaluation (one benchmark per artifact) plus ablations of the design
// choices DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// Each table/figure benchmark executes the corresponding experiment once
// per iteration and reports the headline metric with b.ReportMetric, so the
// bench output doubles as a results summary.

func benchParams() experiments.Params {
	p := experiments.Defaults()
	p.Quick = true // full-scale runs are available via cmd/experiments
	return p
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	run, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	p := benchParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := run(p)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Rows) == 0 {
			b.Fatal("empty report")
		}
	}
}

// BenchmarkTable3Calibration regenerates Table 3: middleware parameter
// measurement (message sizes, Wrep fit) against the running middleware.
func BenchmarkTable3Calibration(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkFig2StarSmall regenerates Fig. 2: load curves for 1- vs
// 2-server stars on DGEMM 10x10 (agent-limited regime).
func BenchmarkFig2StarSmall(b *testing.B) { runExperiment(b, "fig2") }

// BenchmarkFig3PredictedVsMeasured regenerates Fig. 3: model prediction vs
// simulated measurement, DGEMM 10x10.
func BenchmarkFig3PredictedVsMeasured(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkFig4StarLarge regenerates Fig. 4: load curves for 1- vs
// 2-server stars on DGEMM 200x200 (server-limited regime).
func BenchmarkFig4StarLarge(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkFig5PredictedVsMeasured regenerates Fig. 5: model prediction vs
// simulated measurement, DGEMM 200x200.
func BenchmarkFig5PredictedVsMeasured(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkTable4Heuristic regenerates Table 4: heuristic vs optimal
// deployments on homogeneous clusters.
func BenchmarkTable4Heuristic(b *testing.B) { runExperiment(b, "table4") }

// BenchmarkFig6Heterogeneous regenerates Fig. 6: star vs balanced vs
// automatic deployment on the heterogenised cluster, DGEMM 310x310.
func BenchmarkFig6Heterogeneous(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig7LargeProblem regenerates Fig. 7: automatic (≈star) vs
// balanced on the heterogenised cluster, DGEMM 1000x1000.
func BenchmarkFig7LargeProblem(b *testing.B) { runExperiment(b, "fig7") }

// --- planner micro-benchmarks and ablations -----------------------------

func planningRequest(b *testing.B, nodes int, dgemmN int, seed int64) core.Request {
	b.Helper()
	plat, err := platform.Generate(platform.GenSpec{
		Name: "bench", N: nodes, Bandwidth: 100, MinPower: 100, MaxPower: 800, Seed: seed,
	})
	if err != nil {
		b.Fatal(err)
	}
	return core.Request{
		Platform: plat,
		Costs:    model.DIETDefaults(),
		Wapp:     workload.DGEMM{N: dgemmN}.MFlop(),
	}
}

// BenchmarkHeuristicPlan measures Algorithm 1's planning cost on a
// 200-node heterogeneous pool (the paper's Fig. 6 scale).
func BenchmarkHeuristicPlan(b *testing.B) {
	req := planningRequest(b, 200, 310, 7)
	planner := core.NewHeuristic()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := planner.Plan(req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHeuristicPlanLargePool stresses planning on a 1000-node pool,
// beyond anything in the paper.
func BenchmarkHeuristicPlanLargePool(b *testing.B) {
	req := planningRequest(b, 1000, 310, 11)
	planner := core.NewHeuristic()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := planner.Plan(req); err != nil {
			b.Fatal(err)
		}
	}
}

// --- planner scaling benchmarks (the CI bench regression gate) ----------
//
// scenarioRequest builds a trace-perturbed platform (the §5.3
// heterogenised-cluster family) whose deployment grows to the full pool
// under a DGEMM-1000 workload, so the benchmarks measure the planner's
// full growth loop, not an early exit.
// scripts/bench.sh runs the six benchmarks below, writes BENCH_plan.json,
// and fails when the 5k incremental/naive speedup drops under 10x or when
// ns/op / allocs regress against a recorded baseline (cmd/benchguard).
func scenarioRequest(b *testing.B, n int) core.Request {
	b.Helper()
	plat, err := (scenario.Spec{Family: scenario.TracePerturbed, N: n, Seed: 7}).Generate()
	if err != nil {
		b.Fatal(err)
	}
	return core.Request{
		Platform: plat,
		Costs:    model.DIETDefaults(),
		Wapp:     workload.DGEMM{N: 1000}.MFlop(),
	}
}

func benchPlanner(b *testing.B, planner core.Planner, n int) {
	b.Helper()
	req := scenarioRequest(b, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := planner.Plan(req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHeuristicPlan{100,1k,5k} plan through the incremental
// evaluator; the Naive variants plan through the retained full-recompute
// reference (the pre-refactor cost profile). Same deployments, different
// evaluation engines.
func BenchmarkHeuristicPlan100(b *testing.B)      { benchPlanner(b, core.NewHeuristic(), 100) }
func BenchmarkHeuristicPlan1k(b *testing.B)       { benchPlanner(b, core.NewHeuristic(), 1000) }
func BenchmarkHeuristicPlan5k(b *testing.B)       { benchPlanner(b, core.NewHeuristic(), 5000) }
func BenchmarkHeuristicPlanNaive100(b *testing.B) { benchPlanner(b, core.NewHeuristicNaive(), 100) }
func BenchmarkHeuristicPlanNaive1k(b *testing.B)  { benchPlanner(b, core.NewHeuristicNaive(), 1000) }
func BenchmarkHeuristicPlanNaive5k(b *testing.B)  { benchPlanner(b, core.NewHeuristicNaive(), 5000) }

// BenchmarkHeuristicPlanClustered5k plans a 5k-node multi-cluster grid
// with heterogeneous links (the cluster-grid scenario family): same
// workload as BenchmarkHeuristicPlan5k, but every placement decision now
// runs through the per-node-bandwidth paths (prediction-throughput heap,
// min-link heap, best-star and best-pair scans). cmd/benchguard gates it
// to within 2x of the homogeneous 5k benchmark, so heterogeneity support
// can never quietly double the planner's hot path.
func BenchmarkHeuristicPlanClustered5k(b *testing.B) {
	plat, err := (scenario.Spec{Family: scenario.ClusterGrid, N: 5000, Seed: 7}).Generate()
	if err != nil {
		b.Fatal(err)
	}
	req := core.Request{
		Platform: plat,
		Costs:    model.DIETDefaults(),
		Wapp:     workload.DGEMM{N: 1000}.MFlop(),
	}
	planner := core.NewHeuristic()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := planner.Plan(req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHeuristicPlan{100k,1M} measure planning at fleet scale through
// the class-collapsed path: a multi-cluster grid whose powers are drawn
// from a 20-SKU machine catalogue (PowerLevels), so the pool compresses
// into a few dozen (power, link) equivalence classes and every spec scan
// runs over classes instead of nodes. Platform generation stays outside
// the timer — the gate measures planning, not synthesis. cmd/benchguard
// enforces an absolute ceiling of one second per 1M-node plan
// (-require-max-ns), the headline latency this path exists for.
func benchClassPlanner(b *testing.B, n int) {
	plat, err := (scenario.Spec{Family: scenario.ClusterGrid, N: n, Seed: 7, Clusters: 8, PowerLevels: 20}).Generate()
	if err != nil {
		b.Fatal(err)
	}
	req := core.Request{
		Platform: plat,
		Costs:    model.DIETDefaults(),
		Wapp:     workload.DGEMM{N: 1000}.MFlop(),
	}
	planner := core.NewHeuristic()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, err := planner.Plan(req)
		if err != nil {
			b.Fatal(err)
		}
		if !plan.ClassPlanned {
			b.Fatal("class-collapsed path did not engage")
		}
	}
}

func BenchmarkHeuristicPlan100k(b *testing.B) { benchClassPlanner(b, 100_000) }
func BenchmarkHeuristicPlan1M(b *testing.B)   { benchClassPlanner(b, 1_000_000) }

// BenchmarkPortfolioPlan1k races the full stock portfolio on a 1k pool.
func BenchmarkPortfolioPlan1k(b *testing.B) { benchPlanner(b, portfolio.New(), 1000) }

// BenchmarkAblationHeuristicVsGreedySwap quantifies what the swap-refiner
// extension adds over the faithful Algorithm 1 (DESIGN.md ablation): the
// reported metric is the refined-over-faithful throughput ratio.
func BenchmarkAblationHeuristicVsGreedySwap(b *testing.B) {
	req := planningRequest(b, 60, 200, 13)
	faithful := core.NewHeuristic()
	refined := &core.SwapRefiner{Inner: core.NewHeuristic()}
	var gain float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fp, err := faithful.Plan(req)
		if err != nil {
			b.Fatal(err)
		}
		rp, err := refined.Plan(req)
		if err != nil {
			b.Fatal(err)
		}
		gain = rp.Capped / fp.Capped
	}
	b.ReportMetric(gain, "throughput-ratio")
}

// BenchmarkAblationSortNodesPoolDegree checks the cost of the paper's
// "rank against the whole pool" sorting choice by planning across seeds.
func BenchmarkAblationPlannerComparison(b *testing.B) {
	req := planningRequest(b, 100, 310, 17)
	planners := []core.Planner{
		core.NewHeuristic(),
		&baseline.Star{},
		&baseline.Balanced{},
		&baseline.OptimalDAry{},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, pl := range planners {
			if _, err := pl.Plan(req); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulator event throughput on
// a mid-size hierarchy under saturated load.
func BenchmarkSimulatorThroughput(b *testing.B) {
	req := planningRequest(b, 60, 310, 19)
	plan, err := core.NewHeuristic().Plan(req)
	if err != nil {
		b.Fatal(err)
	}
	var events int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.Measure(plan.Hierarchy, req.Costs, 100, req.Wapp,
			sim.Config{Clients: 50, Warmup: 1, Window: 3})
		if err != nil {
			b.Fatal(err)
		}
		events = res.Events
	}
	b.ReportMetric(float64(events), "events/run")
}

// BenchmarkServicePlanCache measures a full POST /v1/plan round trip
// through the adeptd HTTP handler on a 200-node pool: "cold" forces a
// fresh heuristic run per request (no_cache), "warm" repeats one identical
// request so every iteration after the first is answered from the
// content-addressed cache. The warm/cold gap is the cache's value.
func BenchmarkServicePlanCache(b *testing.B) {
	srv, err := service.New(service.Config{CacheSize: 16, Workers: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	handler := srv.Handler()

	plat, err := platform.Generate(platform.GenSpec{
		Name: "bench-svc", N: 200, Bandwidth: 100, MinPower: 100, MaxPower: 800, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}

	do := func(b *testing.B, noCache bool) {
		b.Helper()
		body, err := json.Marshal(service.PlanRequest{
			Platform: plat,
			DgemmN:   310,
			NoCache:  noCache,
		})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			req := httptest.NewRequest(http.MethodPost, "/v1/plan", bytes.NewReader(body))
			rec := httptest.NewRecorder()
			handler.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
			}
		}
	}
	b.Run("cold", func(b *testing.B) { do(b, true) })
	b.Run("warm", func(b *testing.B) { do(b, false) })
}

// BenchmarkServicePlanThroughput measures the serving layer end to end
// under the two key workloads real traffic is made of, driving the adeptd
// handler from GOMAXPROCS goroutines:
//
//   - hot: every request repeats one of 8 pre-warmed keys, so the whole
//     round trip is decode → sharded-cache hit on a pre-rendered entry →
//     encode. This is the path the cache sharding and rendered entries
//     exist for; ns/op here is the daemon's floor per request.
//   - mixed: 90% hot keys, 10% cold (a unique Wapp forces a fresh
//     planner run through the pool), the shape of a realistic key
//     distribution with churn.
//
// scripts/bench.sh records both into BENCH_plan.json, so cmd/benchguard
// gates serving-layer regressions exactly like planner regressions.
func BenchmarkServicePlanThroughput(b *testing.B) {
	run := func(b *testing.B, coldEvery int) {
		srv, err := service.New(service.Config{CacheSize: 4096, QueueDepth: 4096})
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		handler := srv.Handler()

		const hotKeys = 8
		hotBodies := make([][]byte, hotKeys)
		for i := range hotBodies {
			plat, err := platform.Generate(platform.GenSpec{
				Name: fmt.Sprintf("bench-tp-%d", i), N: 120,
				Bandwidth: 100, MinPower: 100, MaxPower: 800, Seed: int64(100 + i),
			})
			if err != nil {
				b.Fatal(err)
			}
			hotBodies[i], err = json.Marshal(service.PlanRequest{Platform: plat, DgemmN: 310})
			if err != nil {
				b.Fatal(err)
			}
			// Pre-warm so the hot path measures hits, not first plans.
			req := httptest.NewRequest(http.MethodPost, "/v1/plan", bytes.NewReader(hotBodies[i]))
			rec := httptest.NewRecorder()
			handler.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("warmup status %d: %s", rec.Code, rec.Body.String())
			}
		}
		coldTemplate := hotBodies[0]
		var seq atomic.Int64

		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				i++
				body := hotBodies[i%hotKeys]
				if coldEvery > 0 && i%coldEvery == 0 {
					// A unique wapp value rewrites the content address:
					// guaranteed cache miss, fresh pool run.
					var pr service.PlanRequest
					if err := json.Unmarshal(coldTemplate, &pr); err != nil {
						b.Fatal(err)
					}
					pr.DgemmN = 0
					pr.Wapp = 1e6 + float64(seq.Add(1))
					var err error
					body, err = json.Marshal(pr)
					if err != nil {
						b.Fatal(err)
					}
				}
				req := httptest.NewRequest(http.MethodPost, "/v1/plan", bytes.NewReader(body))
				rec := httptest.NewRecorder()
				handler.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
				}
			}
		})
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
	}
	b.Run("hot", func(b *testing.B) { run(b, 0) })
	b.Run("mixed", func(b *testing.B) { run(b, 10) })
}

// BenchmarkServicePlanTrace prices the observability spine on the
// daemon's hottest path, the cached plan hit: "off" is the default
// untraced request (the nil-recorder fast path — every instrumentation
// point is one pointer test), "on" carries "trace":true and pays for
// recorder allocation, phase spans, and trace rendering into the
// response. scripts/bench.sh records the off case into BENCH_plan.json
// so cmd/benchguard catches any instrumentation creep on untraced
// requests; the off/on gap in one run shows what tracing costs when
// it is actually asked for.
func BenchmarkServicePlanTrace(b *testing.B) {
	run := func(b *testing.B, trace bool) {
		srv, err := service.New(service.Config{CacheSize: 64, Workers: 4})
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		handler := srv.Handler()

		plat, err := platform.Generate(platform.GenSpec{
			Name: "bench-trace", N: 120, Bandwidth: 100, MinPower: 100, MaxPower: 800, Seed: 7,
		})
		if err != nil {
			b.Fatal(err)
		}
		body, err := json.Marshal(service.PlanRequest{Platform: plat, DgemmN: 310, Trace: trace})
		if err != nil {
			b.Fatal(err)
		}
		// Pre-warm so every measured iteration is a cache hit.
		req := httptest.NewRequest(http.MethodPost, "/v1/plan", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("warmup status %d: %s", rec.Code, rec.Body.String())
		}

		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req := httptest.NewRequest(http.MethodPost, "/v1/plan", bytes.NewReader(body))
			rec := httptest.NewRecorder()
			handler.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, false) })
	b.Run("on", func(b *testing.B) { run(b, true) })
}

// BenchmarkModelEvaluate measures one throughput-model evaluation of a
// 200-node deployment — the inner loop of every planner.
func BenchmarkModelEvaluate(b *testing.B) {
	req := planningRequest(b, 200, 310, 23)
	plan, err := (&baseline.Star{}).Plan(req)
	if err != nil {
		b.Fatal(err)
	}
	h := plan.Hierarchy
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.Evaluate(req.Costs, 100, req.Wapp)
	}
}

// BenchmarkObsStoreSample prices one time-series sampling tick — the
// per-second background cost every adeptd instance pays for the SLO
// engine — over a source mix mirroring the daemon's: cumulative
// counters, instantaneous gauges, and two histogram quantiles computed
// from a populated latency ladder. scripts/bench.sh records it into
// BENCH_plan.json so benchguard flags sampling-overhead creep.
func BenchmarkObsStoreSample(b *testing.B) {
	reg := obs.NewRegistry()
	requests := reg.Counter("requests_total", "")
	errs := reg.Counter("errors_total", "")
	queue := reg.Gauge("queue_depth", "")
	active := reg.Gauge("active_plans", "")
	entries := reg.Gauge("cache_entries", "")
	lat := reg.Histogram("plan_latency_s", "", obs.LatencyBuckets())

	requests.Add(250_000)
	errs.Add(1_200)
	queue.Set(12)
	active.Set(8)
	entries.Set(4096)
	// Spread observations across the ladder so Quantile walks real
	// bucket counts instead of short-circuiting on an empty histogram.
	for i := 0; i < 10_000; i++ {
		lat.Observe(100e-6 * float64(1+i%4000))
	}

	store := obs.NewStore(600)
	store.WatchCounter("requests_total", requests)
	store.WatchCounter("errors_total", errs)
	store.WatchGauge("queue_depth", queue)
	store.WatchGauge("active_plans", active)
	store.WatchGauge("cache_entries", entries)
	store.WatchQuantile("plan_latency_p50_ms", lat, 0.50)
	store.WatchQuantile("plan_latency_p99_ms", lat, 0.99)
	store.Watch("slo_availability_good", func() float64 {
		return float64(requests.Value() - errs.Value())
	})
	store.Watch("slo_availability_total", func() float64 {
		return float64(requests.Value())
	})

	base := time.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		store.Sample(base.Add(time.Duration(i) * time.Second))
	}
}
